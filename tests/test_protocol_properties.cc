/**
 * @file
 * Property-based tests of the coherence protocol spectrum. Every
 * protocol, from the software-only directory to full-map, must
 * provide sequentially consistent shared memory; these tests exercise
 * randomized and adversarial access patterns and check:
 *
 *  - single-writer monotonicity: a reader never observes a value
 *    older than one it has already seen,
 *  - atomic read-modify-write totals are exact under contention,
 *  - mutual exclusion built from swap holds,
 *  - final memory state matches the last write,
 *  - machine-wide coherence invariants hold at quiescence,
 *  - protocol choice and victim caching never change results.
 */

#include <gtest/gtest.h>

#include "audit/auditor.hh"
#include "base/rng.hh"
#include "core/spectrum.hh"
#include "machine/mem_api.hh"
#include "runtime/sync.hh"

using namespace swex;

namespace
{

struct ProtocolCase
{
    SpectrumPoint point;
    int nodes;
    unsigned victim;
};

std::vector<ProtocolCase>
allCases()
{
    std::vector<ProtocolCase> cases;
    for (const auto &pt : protocolSpectrum()) {
        cases.push_back({pt, 8, 0});
        cases.push_back({pt, 8, 4});
    }
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<ProtocolCase> &info)
{
    std::string n = info.param.point.label + "_n" +
                    std::to_string(info.param.nodes) +
                    (info.param.victim ? "_vc" : "");
    for (auto &c : n)
        if (c == '-')
            c = '_';
    return n;
}

MachineConfig
configFor(const ProtocolCase &pc)
{
    MachineConfig mc;
    mc.numNodes = pc.nodes;
    mc.protocol = pc.point.protocol;
    mc.cacheCtrl.victimEntries = pc.victim;
    return mc;
}

} // anonymous namespace

class ProtocolProperty : public ::testing::TestWithParam<ProtocolCase>
{};

TEST_P(ProtocolProperty, SingleWriterMonotonicity)
{
    // Each node owns one slot it increments; every node polls every
    // slot and checks that observed values never regress (SC).
    Machine m(configFor(GetParam()));
    int n = m.numNodes();
    SharedArray slots(m, static_cast<size_t>(n) * wordsPerBlock,
                      Layout::Blocked);
    slots.fill(m, 0);
    bool monotonic = true;

    m.run([&](Mem &mem, int tid) -> Task<void> {
        std::vector<Word> last(static_cast<size_t>(n), 0);
        Rng rng(1000 + static_cast<std::uint64_t>(tid));
        for (int round = 0; round < 30; ++round) {
            Addr mine = slots.at(
                static_cast<size_t>(tid) * wordsPerBlock);
            co_await mem.write(mine, static_cast<Word>(round + 1));
            for (int peek = 0; peek < 3; ++peek) {
                auto who = static_cast<size_t>(
                    rng.below(static_cast<std::uint64_t>(n)));
                Word v = co_await mem.read(
                    slots.at(who * wordsPerBlock));
                if (v < last[who])
                    monotonic = false;
                last[who] = v;
                co_await mem.work(rng.below(40) + 1);
            }
        }
    });

    EXPECT_TRUE(monotonic);
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(m.debugRead(slots.at(
            static_cast<size_t>(i) * wordsPerBlock)), 30u);
    m.checkInvariants();
}

TEST_P(ProtocolProperty, ContendedAtomicCounters)
{
    Machine m(configFor(GetParam()));
    int n = m.numNodes();
    // Three hot counters on different homes; every node hammers all.
    std::vector<Addr> ctrs = {
        m.allocOn(0, blockBytes, blockBytes),
        m.allocOn(n / 2, blockBytes, blockBytes),
        m.allocOn(n - 1, blockBytes, blockBytes),
    };
    const int per_thread = 12;

    m.run([&](Mem &mem, int tid) -> Task<void> {
        Rng rng(77 + static_cast<std::uint64_t>(tid));
        for (int i = 0; i < per_thread; ++i) {
            for (Addr c : ctrs) {
                co_await mem.fetchAdd(c, 1);
                co_await mem.work(rng.below(25) + 1);
            }
        }
    });

    for (Addr c : ctrs)
        EXPECT_EQ(m.debugRead(c),
                  static_cast<Word>(n * per_thread));
    m.checkInvariants();
}

TEST_P(ProtocolProperty, MutualExclusionUnderContention)
{
    Machine m(configFor(GetParam()));
    int n = m.numNodes();
    SpinLock lock = SpinLock::create(m, 0);
    Addr shared = m.allocOn(1, blockBytes, blockBytes);
    m.debugWrite(shared, 0);
    const int iters = 6;

    m.run([&](Mem &mem, int) -> Task<void> {
        for (int i = 0; i < iters; ++i) {
            co_await lock.acquire(mem);
            Word v = co_await mem.read(shared);
            co_await mem.work(23);
            co_await mem.write(shared, v + 1);
            co_await lock.release(mem);
        }
    });

    EXPECT_EQ(m.debugRead(shared), static_cast<Word>(n * iters));
    m.checkInvariants();
}

TEST_P(ProtocolProperty, RandomChaosLeavesCoherentState)
{
    // Random reads/writes/atomics over a small hot pool plus a cold
    // spread, with random compute in between. The system must end
    // quiescent and coherent, and the per-address "last writer wins"
    // value must be one actually written there.
    Machine m(configFor(GetParam()));
    int n = m.numNodes();
    constexpr int hot_blocks = 6;
    constexpr int cold_blocks = 64;
    SharedArray hot(m, hot_blocks * wordsPerBlock, Layout::Interleaved);
    SharedArray cold(m, cold_blocks * wordsPerBlock,
                     Layout::Interleaved);
    hot.fill(m, 0);
    cold.fill(m, 0);

    m.run([&](Mem &mem, int tid) -> Task<void> {
        Rng rng(31337 + static_cast<std::uint64_t>(tid) * 7919);
        for (int op = 0; op < 80; ++op) {
            bool use_hot = rng.chance(0.6);
            Addr a = use_hot
                ? hot.at(rng.below(hot_blocks) * wordsPerBlock)
                : cold.at(rng.below(cold_blocks) * wordsPerBlock);
            switch (rng.below(4)) {
              case 0:
              case 1:
                co_await mem.read(a);
                break;
              case 2:
                co_await mem.write(
                    a, (static_cast<Word>(tid) << 32) |
                       static_cast<Word>(op));
                break;
              default:
                co_await mem.fetchAdd(a, 1);
                break;
            }
            if (rng.chance(0.5))
                co_await mem.work(rng.below(60) + 1);
        }
    });

    m.checkInvariants();
    (void)n;
}

TEST_P(ProtocolProperty, ProducerConsumerChain)
{
    // Node i waits for a token from node i-1, adds one, passes it on.
    Machine m(configFor(GetParam()));
    int n = m.numNodes();
    SharedArray mail(m, static_cast<size_t>(n) * wordsPerBlock,
                     Layout::Blocked);
    mail.fill(m, 0);
    const int rounds = 4;

    m.run([&](Mem &mem, int tid) -> Task<void> {
        Addr in = mail.at(static_cast<size_t>(tid) * wordsPerBlock);
        Addr out = mail.at(
            static_cast<size_t>((tid + 1) % n) * wordsPerBlock);
        for (int r = 1; r <= rounds; ++r) {
            if (tid == 0) {
                if (r > 1) {
                    while (co_await mem.read(in) !=
                           static_cast<Word>(
                               (r - 1) * n))
                        co_await mem.work(30);
                }
                co_await mem.write(out,
                                   static_cast<Word>((r - 1) * n + 1));
            } else {
                Word expect = static_cast<Word>((r - 1) * n + tid);
                while (co_await mem.read(in) != expect)
                    co_await mem.work(30);
                co_await mem.write(out, expect + 1);
            }
        }
    });

    // After `rounds` laps, node 0's mailbox holds rounds*n.
    EXPECT_EQ(m.debugRead(mail.at(0)),
              static_cast<Word>(rounds * n));
    m.checkInvariants();
}

TEST_P(ProtocolProperty, ConflictEvictionStorm)
{
    // Six hot counters on different homes, all mapping to the same
    // cache set: every access evicts a dirty line, so the run is a
    // storm of writebacks, home-initiated fetches, NACK/re-fetch
    // races, and (when enabled) victim-cache swaps. The atomic totals
    // must still come out exact under every protocol.
    Machine m(configFor(GetParam()));
    int n = m.numNodes();
    std::vector<Addr> ctrs;
    for (int i = 0; i < 6; ++i)
        ctrs.push_back(m.allocAtIndex(i % n, blockBytes, 500));
    for (Addr c : ctrs)
        m.debugWrite(c, 0);
    const int rounds = 10;

    m.run([&](Mem &mem, int tid) -> Task<void> {
        Rng rng(555 + static_cast<std::uint64_t>(tid));
        for (int r = 0; r < rounds; ++r) {
            // Touch every counter in a per-thread order; consecutive
            // accesses conflict in the direct-mapped cache.
            for (int k = 0; k < 6; ++k) {
                auto idx = static_cast<std::size_t>(
                    (k + tid) % 6);
                co_await mem.fetchAdd(ctrs[idx], 1);
            }
            co_await mem.work(rng.below(30) + 1);
        }
    });

    for (Addr c : ctrs)
        EXPECT_EQ(m.debugRead(c),
                  static_cast<Word>(n * rounds));
    m.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(Spectrum, ProtocolProperty,
                         ::testing::ValuesIn(allCases()), caseName);

// ------------------------------------------------------------------
// Cross-protocol result equivalence: the protocol is a performance
// knob, never a semantics knob.
// ------------------------------------------------------------------

TEST(ProtocolEquivalence, FinalStateIdenticalAcrossSpectrum)
{
    std::vector<Word> reference;
    for (const auto &pt : protocolSpectrum()) {
        SCOPED_TRACE(pt.label);
        MachineConfig mc;
        mc.numNodes = 8;
        mc.protocol = pt.protocol;
        Machine m(mc);
        SharedArray data(m, 32 * wordsPerBlock, Layout::Interleaved);
        data.fill(m, 0);

        // Deterministic per-slot ownership: slot s written by node
        // s % 8 with a value derived from (slot, iteration).
        m.run([&](Mem &mem, int tid) -> Task<void> {
            for (int it = 0; it < 5; ++it) {
                for (int s = tid; s < 32; s += 8) {
                    Addr a = data.at(
                        static_cast<size_t>(s) * wordsPerBlock);
                    Word v = co_await mem.read(a);
                    co_await mem.write(
                        a, v + static_cast<Word>(s + 1));
                }
                co_await mem.hwBarrier();
            }
        });

        std::vector<Word> finals;
        for (int s = 0; s < 32; ++s)
            finals.push_back(m.debugRead(
                data.at(static_cast<size_t>(s) * wordsPerBlock)));

        if (reference.empty()) {
            reference = finals;
            for (int s = 0; s < 32; ++s)
                EXPECT_EQ(reference[static_cast<size_t>(s)],
                          static_cast<Word>(5 * (s + 1)));
        } else {
            EXPECT_EQ(finals, reference);
        }
        m.checkInvariants();
    }
}

// ------------------------------------------------------------------
// Seeded jitter stress: the two most software-heavy protocols, DIR1SW
// and H0-ACK, at 16 nodes with randomized message delivery delays.
// Jitter reorders every protocol race the mesh timing normally hides
// (late acks, crossing fetches, stale replies); the workload's final
// memory must still be bit-identical to a quiet full-map run, and the
// invariant auditor must stay silent throughout.
// ------------------------------------------------------------------

namespace
{

/** Deterministic-ownership kernel: slot s belongs to node s % n, so
 *  the final memory image is interleaving-independent. Returns the
 *  machine's post-run memory image hash. */
std::uint64_t
jitteredOwnershipRun(const ProtocolConfig &protocol, Cycles jitter_max,
                     std::uint64_t jitter_seed)
{
    constexpr int n = 16;
    constexpr int slots = 64;
    constexpr int iters = 4;
    MachineConfig mc;
    mc.numNodes = n;
    mc.protocol = protocol;
    mc.net.jitterMax = jitter_max;
    mc.net.jitterSeed = jitter_seed;
    Machine m(mc);
    CoherenceAuditor auditor(CoherenceAuditor::Mode::Panic);
    m.attachAuditor(&auditor);

    SharedArray data(m, slots * wordsPerBlock, Layout::Interleaved);
    data.fill(m, 0);
    m.run([&](Mem &mem, int tid) -> Task<void> {
        for (int it = 0; it < iters; ++it) {
            for (int s = tid; s < slots; s += n) {
                Addr a = data.at(
                    static_cast<size_t>(s) * wordsPerBlock);
                Word v = co_await mem.read(a);
                co_await mem.write(a, v + static_cast<Word>(s + 1));
            }
            co_await mem.hwBarrier();
        }
    });

    for (int s = 0; s < slots; ++s)
        EXPECT_EQ(m.debugRead(data.at(
                      static_cast<size_t>(s) * wordsPerBlock)),
                  static_cast<Word>(iters * (s + 1)));
    m.checkInvariants();
    EXPECT_GT(auditor.transitionsChecked(), 0u);
    m.attachAuditor(nullptr);
    return m.imageHash();
}

} // anonymous namespace

TEST(JitterStress, SoftwareHeavyProtocolsSurviveJitteredDelivery)
{
    const std::uint64_t reference =
        jitteredOwnershipRun(ProtocolConfig::fullMap(), 0, 0);
    for (const auto &pc :
         {std::pair<const char *, ProtocolConfig>
              {"DIR1SW", ProtocolConfig::dir1sw()},
              {"H0-ACK", ProtocolConfig::h0()}}) {
        SCOPED_TRACE(pc.first);
        for (std::uint64_t seed : {1u, 2u, 3u}) {
            SCOPED_TRACE(seed);
            EXPECT_EQ(jitteredOwnershipRun(pc.second, 37, seed),
                      reference);
        }
    }
}
