/**
 * @file
 * Tests for the content-addressed result cache: the swex-rec-v1
 * container survives concurrent same-key stores, a hit serves the
 * byte-identical canonical document a direct run emits, invalidation
 * is component-scoped (a directory bump leaves snoop cells warm),
 * corrupt entries fall back to recompute-and-replace, and the warm
 * path is --jobs invariant.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "exp/cache/code_version.hh"
#include "exp/cache/record_io.hh"
#include "exp/cache/result_cache.hh"
#include "exp/runner.hh"

using namespace swex;

namespace
{

/** Fresh scratch directory under gtest's temp root. */
std::string
scratchDir(const std::string &tag)
{
    std::string tmpl = ::testing::TempDir() + "swexcache-" + tag +
                       "-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *d = mkdtemp(buf.data());
    EXPECT_NE(d, nullptr);
    return d != nullptr ? d : ".";
}

/** A small directory-machine WORKER cell. */
ExperimentSpec
workerSpec(const std::string &id)
{
    return ExperimentSpec{.id = id,
                          .app = "worker",
                          .params = {{"wss", "3"}, {"iterations", "2"}},
                          .protocol = ProtocolConfig::hw(5),
                          .nodes = 8,
                          .victimEntries = 6};
}

/** A snooping-bus cell over a sharing microbenchmark. */
ExperimentSpec
snoopSpec(const std::string &id)
{
    ExperimentSpec s{.id = id,
                     .app = "falseshare",
                     .params = AppRegistry::instance()
                                   .entry("falseshare").smokeParams,
                     .nodes = 4,
                     .victimEntries = 6};
    s.machineModel = MachineModel::Snoop;
    s.snoopProtocol = SnoopProtocol::Mesi;
    return s;
}

std::string
canonicalJson(const RunRecord &r)
{
    std::ostringstream os;
    r.writeJson(os, /*canonical=*/true);
    return os.str();
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::vector<std::uint8_t> raw;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        raw.insert(raw.end(), buf, buf + n);
    std::fclose(f);
    return raw;
}

void
spit(const std::string &path, const std::vector<std::uint8_t> &raw)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(raw.data(), 1, raw.size(), f), raw.size());
    std::fclose(f);
}

/** Pin @p path's mtime to an explicit timestamp, so LRU ordering in
 *  the eviction tests never depends on filesystem timestamp
 *  granularity or test scheduling. */
void
setMtime(const std::string &path, std::uint64_t sec)
{
    timespec ts[2];
    ts[0].tv_sec = static_cast<time_t>(sec);
    ts[0].tv_nsec = 0;
    ts[1] = ts[0];
    ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), ts, 0), 0);
}

} // anonymous namespace

// The headline-bug regression at the cache layer: many writers
// racing the same entry path. Unique-temp + rename means the file at
// the path is always one writer's complete output — never a torn
// interleaving — so it must load with a passing checksum after every
// racing store.
TEST(RecordIo, ConcurrentSameKeyStoresLeaveACompleteEntry)
{
    setQuiet(true);
    const std::string path = scratchDir("race") + "/entry.swexrec";
    constexpr std::uint64_t specKey = 0x1234;
    constexpr std::uint64_t codeFp = 0x5678;
    constexpr int writers = 8;
    constexpr int rounds = 20;

    std::vector<std::thread> threads;
    threads.reserve(writers);
    for (int t = 0; t < writers; ++t) {
        threads.emplace_back([&, t] {
            RunRecord r;
            r.id = "race/" + std::to_string(t);
            r.app = "worker";
            r.protocol = "HW5";
            r.nodes = 8;
            r.verified = true;
            r.simCycles = 1000 + t;
            r.imageHash = 0xabcd0000 + t;
            // Vary the payload size per writer so a torn mix of two
            // writers cannot accidentally parse.
            r.stallSummary = std::string(16 * (t + 1), 'x');
            for (int i = 0; i < rounds; ++i) {
                std::string err;
                ASSERT_TRUE(cache::saveRecord(path, r, specKey,
                                              codeFp, err)) << err;
            }
        });
    }
    for (auto &th : threads)
        th.join();

    RunRecord out;
    std::string err;
    ASSERT_EQ(cache::loadRecord(path, out, specKey, codeFp, err),
              cache::LoadStatus::Ok) << err;
    // The surviving entry is exactly one writer's record.
    ASSERT_GE(out.simCycles, 1000u);
    ASSERT_LT(out.simCycles, 1000u + writers);
    const auto t = out.simCycles - 1000;
    EXPECT_EQ(out.id, "race/" + std::to_string(t));
    EXPECT_EQ(out.imageHash, 0xabcd0000 + t);
    EXPECT_EQ(out.stallSummary.size(), 16 * (t + 1));
}

TEST(ResultCache, MissThenStoreThenByteIdenticalHit)
{
    setQuiet(true);
    cache::ResultCache rcache(scratchDir("roundtrip"));

    Runner cold;
    cold.attachCache(&rcache);
    const RunRecord direct = cold.execute(workerSpec("cache/rt"));
    ASSERT_TRUE(direct.verified);

    auto c = rcache.counters();
    EXPECT_EQ(c.hits, 0u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.stores, 1u);
    EXPECT_TRUE(fileExists(rcache.entryPath(workerSpec("cache/rt"))));

    Runner warm;
    warm.attachCache(&rcache);
    const RunRecord served = warm.execute(workerSpec("cache/rt"));

    c = rcache.counters();
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(canonicalJson(served), canonicalJson(direct));

    // A different cell is a different key: no false hit.
    ExperimentSpec other = workerSpec("cache/rt");
    other.params["wss"] = "4";
    EXPECT_NE(cache::ResultCache::specKey(other),
              cache::ResultCache::specKey(workerSpec("cache/rt")));
    EXPECT_FALSE(rcache.contains(other));
}

TEST(ResultCache, InvalidationIsComponentScoped)
{
    setQuiet(true);
    const std::string dir = scratchDir("invalidate");

    const ExperimentSpec dirCell = workerSpec("cache/dir");
    const ExperimentSpec busCell = snoopSpec("cache/bus");

    {
        cache::ResultCache rcache(dir);
        Runner runner;
        runner.attachCache(&rcache);
        ASSERT_TRUE(runner.execute(dirCell).verified);
        ASSERT_TRUE(runner.execute(busCell).verified);
        ASSERT_EQ(rcache.counters().stores, 2u);
    }

    // Bump the directory component relative to the build-derived
    // fingerprints: the directory cell must go cold (stale, deleted)
    // while the snoop cell stays warm.
    cache::CodeVersions bumped = cache::CodeVersions::current();
    bumped.directory += 1;
    cache::ResultCache rcache(dir, bumped);

    RunRecord out;
    EXPECT_TRUE(rcache.lookup(busCell, out));
    EXPECT_FALSE(rcache.lookup(dirCell, out));
    auto c = rcache.counters();
    EXPECT_EQ(c.hits, 1u);
    EXPECT_EQ(c.stale, 1u);
    EXPECT_EQ(c.misses, 1u);
    EXPECT_FALSE(fileExists(rcache.entryPath(dirCell)));

    // The epoch is a whole-cache master switch: under a bumped epoch
    // even the surviving snoop entry reads stale.
    cache::CodeVersions epoch = cache::CodeVersions::current();
    epoch.epoch = 99;
    cache::ResultCache swept(dir, epoch);
    EXPECT_FALSE(swept.lookup(busCell, out));
    EXPECT_EQ(swept.counters().stale, 1u);
}

TEST(ResultCache, CorruptEntryFallsBackToRecompute)
{
    setQuiet(true);
    cache::ResultCache rcache(scratchDir("corrupt"));
    const ExperimentSpec spec = workerSpec("cache/corrupt");

    Runner runner;
    runner.attachCache(&rcache);
    const RunRecord direct = runner.execute(spec);
    ASSERT_TRUE(direct.verified);

    // Flip one payload byte: the whole-file checksum must catch it.
    const std::string path = rcache.entryPath(spec);
    auto raw = slurp(path);
    ASSERT_GT(raw.size(), 64u);
    raw[raw.size() / 2] ^= 0xff;
    spit(path, raw);

    RunRecord out;
    EXPECT_FALSE(rcache.lookup(spec, out));
    auto c = rcache.counters();
    EXPECT_EQ(c.corrupt, 1u);
    EXPECT_FALSE(fileExists(path)) << "corrupt entry not deleted";

    // The Runner's transparent fallback: recompute, re-store, and the
    // replacement serves the same bytes as the original direct run.
    const RunRecord recomputed = runner.execute(spec);
    EXPECT_EQ(canonicalJson(recomputed), canonicalJson(direct));
    const RunRecord served = runner.execute(spec);
    EXPECT_EQ(canonicalJson(served), canonicalJson(direct));
    c = rcache.counters();
    EXPECT_EQ(c.stores, 2u);
    EXPECT_EQ(c.hits, 1u);

    // Truncation is equally fatal: cut the stored entry short.
    auto whole = slurp(path);
    ASSERT_GT(whole.size(), 40u);
    whole.resize(40);
    spit(path, whole);
    EXPECT_FALSE(rcache.lookup(spec, out));
    EXPECT_EQ(rcache.counters().corrupt, 2u);
}

TEST(ResultCache, WarmSweepIsJobsInvariant)
{
    setQuiet(true);
    cache::ResultCache rcache(scratchDir("jobs"));

    std::vector<ExperimentSpec> specs;
    for (int wss : {2, 3, 4, 5}) {
        ExperimentSpec s = workerSpec("cache/jobs/w" +
                                      std::to_string(wss));
        s.params["wss"] = std::to_string(wss);
        specs.push_back(std::move(s));
    }

    // Cold at full parallelism, warm serially: per-cell canonical
    // documents must match, so a cached re-sweep can never depend on
    // the --jobs level that populated the cache.
    Runner cold;
    cold.attachCache(&rcache);
    const auto coldRecs = cold.runAll(specs, 4);

    Runner warm;
    warm.attachCache(&rcache);
    const auto warmRecs = warm.runAll(specs, 1);

    ASSERT_EQ(coldRecs.size(), specs.size());
    ASSERT_EQ(warmRecs.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(canonicalJson(*warmRecs[i]),
                  canonicalJson(*coldRecs[i])) << specs[i].id;

    auto c = rcache.counters();
    EXPECT_EQ(c.stores, specs.size());
    EXPECT_EQ(c.hits, specs.size());
}

TEST(ResultCache, LruEntryBudgetEvictsOldestMtime)
{
    setQuiet(true);
    const std::string dir = scratchDir("lru");
    cache::ResultCache rcache(dir, cache::CodeVersions::current(),
                              {/*maxBytes=*/0, /*maxEntries=*/2});

    ExperimentSpec a = workerSpec("cache/lru/a");
    ExperimentSpec b = workerSpec("cache/lru/b");
    ExperimentSpec c = workerSpec("cache/lru/c");
    a.seed = 11;
    b.seed = 22;
    c.seed = 33;

    Runner runner;
    runner.attachCache(&rcache);
    ASSERT_TRUE(runner.execute(a).verified);
    setMtime(rcache.entryPath(a), 1000);   // least recently used
    ASSERT_TRUE(runner.execute(b).verified);
    setMtime(rcache.entryPath(b), 2000);

    // The third store breaks the 2-entry budget: the oldest-mtime
    // entry (a) goes, the just-stored entry and the fresher survivor
    // stay, and the eviction is accounted.
    ASSERT_TRUE(runner.execute(c).verified);
    EXPECT_FALSE(rcache.contains(a));
    EXPECT_TRUE(rcache.contains(b));
    EXPECT_TRUE(rcache.contains(c));
    EXPECT_EQ(rcache.counters().evictions, 1u);
}

TEST(ResultCache, LruHitTouchesTheEntry)
{
    setQuiet(true);
    const std::string dir = scratchDir("touch");
    cache::ResultCache rcache(dir, cache::CodeVersions::current(),
                              {/*maxBytes=*/0, /*maxEntries=*/2});

    ExperimentSpec a = workerSpec("cache/touch/a");
    ExperimentSpec b = workerSpec("cache/touch/b");
    ExperimentSpec c = workerSpec("cache/touch/c");
    a.seed = 11;
    b.seed = 22;
    c.seed = 33;

    Runner runner;
    runner.attachCache(&rcache);
    ASSERT_TRUE(runner.execute(a).verified);
    ASSERT_TRUE(runner.execute(b).verified);
    // Backdate both, a older than b — then hit a. The hit must
    // refresh a's mtime, flipping the LRU order so the next eviction
    // takes b, not a.
    setMtime(rcache.entryPath(a), 1000);
    setMtime(rcache.entryPath(b), 2000);
    RunRecord out;
    ASSERT_TRUE(rcache.lookup(a, out));

    ASSERT_TRUE(runner.execute(c).verified);
    EXPECT_TRUE(rcache.contains(a)) << "hit did not refresh LRU order";
    EXPECT_FALSE(rcache.contains(b));
    EXPECT_TRUE(rcache.contains(c));
    EXPECT_EQ(rcache.counters().evictions, 1u);
}

TEST(ResultCache, ByteBudgetNeverEvictsTheNewestEntry)
{
    setQuiet(true);
    const std::string dir = scratchDir("bytes");
    // A 1-byte budget is smaller than any record: every store must
    // still keep the entry it just wrote (a cache that evicts its own
    // store can never serve anything) and evict everything older.
    cache::ResultCache rcache(dir, cache::CodeVersions::current(),
                              {/*maxBytes=*/1, /*maxEntries=*/0});

    ExperimentSpec a = workerSpec("cache/bytes/a");
    ExperimentSpec b = workerSpec("cache/bytes/b");
    a.seed = 11;
    b.seed = 22;

    Runner runner;
    runner.attachCache(&rcache);
    ASSERT_TRUE(runner.execute(a).verified);
    EXPECT_TRUE(rcache.contains(a)) << "sole entry must survive";
    setMtime(rcache.entryPath(a), 1000);

    ASSERT_TRUE(runner.execute(b).verified);
    EXPECT_FALSE(rcache.contains(a));
    EXPECT_TRUE(rcache.contains(b));
    EXPECT_EQ(rcache.counters().evictions, 1u);

    // And the surviving over-budget entry still serves a hit.
    RunRecord out;
    EXPECT_TRUE(rcache.lookup(b, out));
}

TEST(ResultCache, ConstructorTrimsAnInheritedOversizedDirectory)
{
    setQuiet(true);
    const std::string dir = scratchDir("inherit");

    ExperimentSpec a = workerSpec("cache/inherit/a");
    ExperimentSpec b = workerSpec("cache/inherit/b");
    ExperimentSpec c = workerSpec("cache/inherit/c");
    a.seed = 11;
    b.seed = 22;
    c.seed = 33;

    {
        cache::ResultCache unbounded(dir);
        Runner runner;
        runner.attachCache(&unbounded);
        ASSERT_TRUE(runner.execute(a).verified);
        ASSERT_TRUE(runner.execute(b).verified);
        ASSERT_TRUE(runner.execute(c).verified);
        setMtime(unbounded.entryPath(a), 1000);
        setMtime(unbounded.entryPath(b), 2000);
        setMtime(unbounded.entryPath(c), 3000);
    }

    // A restarted bounded server inherits three entries over a
    // 1-entry budget: construction itself trims to the newest.
    cache::ResultCache bounded(dir, cache::CodeVersions::current(),
                               {/*maxBytes=*/0, /*maxEntries=*/1});
    EXPECT_FALSE(bounded.contains(a));
    EXPECT_FALSE(bounded.contains(b));
    EXPECT_TRUE(bounded.contains(c));
    EXPECT_EQ(bounded.counters().evictions, 2u);
}
