/**
 * @file
 * Tests for the parallel runtime built on simulated shared memory:
 * shared-array layouts, spin locks, tree barriers, work queues with
 * batched transfer, and the work-stealing scheduler.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/spectrum.hh"
#include "machine/mem_api.hh"
#include "runtime/scheduler.hh"
#include "runtime/shmem.hh"
#include "runtime/sync.hh"

using namespace swex;

namespace
{

MachineConfig
cfg(int nodes, ProtocolConfig p = ProtocolConfig::hw(5))
{
    MachineConfig mc;
    mc.numNodes = nodes;
    mc.protocol = p;
    return mc;
}

} // anonymous namespace

// ------------------------------------------------------------------
// SharedArray layouts
// ------------------------------------------------------------------

TEST(SharedArray, InterleavedSpreadsBlocksRoundRobin)
{
    Machine m(cfg(4));
    SharedArray a(m, 16 * wordsPerBlock, Layout::Interleaved);
    std::set<NodeId> homes;
    for (int b = 0; b < 16; ++b) {
        NodeId h = m.homeOf(a.at(
            static_cast<std::size_t>(b) * wordsPerBlock));
        EXPECT_EQ(h, b % 4);
        homes.insert(h);
    }
    EXPECT_EQ(homes.size(), 4u);
}

TEST(SharedArray, BlockedGivesContiguousChunks)
{
    Machine m(cfg(4));
    SharedArray a(m, 16 * wordsPerBlock, Layout::Blocked);
    for (int b = 0; b < 16; ++b) {
        NodeId h = m.homeOf(a.at(
            static_cast<std::size_t>(b) * wordsPerBlock));
        EXPECT_EQ(h, b / 4);
    }
}

TEST(SharedArray, OnNodeStaysHome)
{
    Machine m(cfg(4));
    SharedArray a(m, 8 * wordsPerBlock, Layout::OnNode, 2);
    for (int b = 0; b < 8; ++b)
        EXPECT_EQ(m.homeOf(a.at(
                      static_cast<std::size_t>(b) * wordsPerBlock)),
                  2);
}

TEST(SharedArray, WordsWithinBlockAreAdjacent)
{
    Machine m(cfg(4));
    SharedArray a(m, 4 * wordsPerBlock, Layout::Interleaved);
    EXPECT_EQ(a.at(1), a.at(0) + sizeof(Word));
    EXPECT_EQ(blockAlign(a.at(0)), blockAlign(a.at(1)));
    EXPECT_NE(blockAlign(a.at(0)),
              blockAlign(a.at(wordsPerBlock)));
}

TEST(SharedArray, FillInitializesEveryWord)
{
    Machine m(cfg(4));
    SharedArray a(m, 10, Layout::Interleaved);
    a.fill(m, 7);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(m.debugRead(a.at(i)), 7u);
}

// ------------------------------------------------------------------
// TreeBarrier
// ------------------------------------------------------------------

TEST(TreeBarrier, SynchronizesManyPhases)
{
    for (int nodes : {1, 3, 8, 16}) {
        SCOPED_TRACE(nodes);
        Machine m(cfg(nodes));
        TreeBarrier proto = TreeBarrier::create(m, nodes);
        SharedArray phase(m,
                          static_cast<std::size_t>(nodes) *
                              wordsPerBlock,
                          Layout::Blocked);
        phase.fill(m, 0);
        bool ok = true;
        m.run([&, proto](Mem &mem, int tid) mutable -> Task<void> {
            TreeBarrier bar = proto;
            for (int ph = 1; ph <= 4; ++ph) {
                co_await mem.write(
                    phase.at(static_cast<std::size_t>(tid) *
                             wordsPerBlock),
                    static_cast<Word>(ph));
                co_await bar.wait(mem);
                for (int j = 0; j < nodes; ++j) {
                    Word v = co_await mem.read(
                        phase.at(static_cast<std::size_t>(j) *
                                 wordsPerBlock));
                    if (v != static_cast<Word>(ph))
                        ok = false;
                }
                co_await bar.wait(mem);
            }
        });
        EXPECT_TRUE(ok);
        m.checkInvariants();
    }
}

TEST(TreeBarrier, WorkerSetsFitHardwarePointers)
{
    // The point of the tree barrier: under H5, barrier traffic should
    // need (almost) no software extension.
    Machine m(cfg(16, ProtocolConfig::hw(5)));
    TreeBarrier proto = TreeBarrier::create(m, 16);
    m.run([&, proto](Mem &mem, int) mutable -> Task<void> {
        TreeBarrier bar = proto;
        for (int ph = 0; ph < 6; ++ph) {
            co_await mem.work(40);
            co_await bar.wait(mem);
        }
    });
    EXPECT_DOUBLE_EQ(m.sumStat("home.trapsRaised"), 0.0);
}

// ------------------------------------------------------------------
// WorkQueue batching
// ------------------------------------------------------------------

TEST(WorkQueue, FifoAcrossBatchedOps)
{
    Machine m(cfg(2));
    WorkQueue q = WorkQueue::create(m, 64, 0);
    std::vector<Word> drained;
    m.run([&](Mem &mem, int tid) -> Task<void> {
        if (tid != 0)
            co_return;
        std::vector<Word> first = {1, 2, 3};
        co_await q.pushMany(mem, first);
        co_await q.push(mem, 4);
        Word w = 0;
        while (co_await q.tryPop(mem, w))
            drained.push_back(w);
    }, 1);
    EXPECT_EQ(drained, (std::vector<Word>{1, 2, 3, 4}));
}

TEST(WorkQueue, TryPopManyTakesAtMostHalf)
{
    Machine m(cfg(2));
    WorkQueue q = WorkQueue::create(m, 64, 0);
    for (Word i = 0; i < 8; ++i)
        q.debugPush(m, i);
    std::size_t got = 0;
    m.run([&](Mem &mem, int tid) -> Task<void> {
        if (tid != 0)
            co_return;
        std::vector<Word> out;
        got = co_await q.tryPopMany(mem, out, 16);
    }, 1);
    EXPECT_EQ(got, 4u);   // half of 8
}

TEST(WorkQueue, PendingAccountsPushesAndFinishes)
{
    Machine m(cfg(2));
    WorkQueue q = WorkQueue::create(m, 64, 0);
    bool done_before = true, done_after = false;
    m.run([&](Mem &mem, int tid) -> Task<void> {
        if (tid != 0)
            co_return;
        std::vector<Word> items = {9, 9, 9};
        co_await q.pushMany(mem, items);
        done_before = co_await q.allDone(mem);
        Word w = 0;
        while (co_await q.tryPop(mem, w)) {}
        co_await q.finishItems(mem, 3);
        done_after = co_await q.allDone(mem);
    }, 1);
    EXPECT_FALSE(done_before);
    EXPECT_TRUE(done_after);
}

// ------------------------------------------------------------------
// StealScheduler
// ------------------------------------------------------------------

TEST(StealScheduler, ProcessesEveryItemExactlyOnce)
{
    for (const auto &pt :
         {SpectrumPoint{"H5", ProtocolConfig::hw(5)},
          SpectrumPoint{"H0", ProtocolConfig::h0()}}) {
        SCOPED_TRACE(pt.label);
        Machine m(cfg(8, pt.protocol));
        StealScheduler sched = StealScheduler::create(m, 512);
        std::vector<Word> seed;
        for (Word i = 1; i <= 40; ++i)
            seed.push_back(i);
        sched.debugSeed(m, seed);

        std::vector<int> seen(41, 0);
        m.run([&](Mem &mem, int tid) -> Task<void> {
            StealScheduler::Worker w(tid);
            Word item = 0;
            while (co_await sched.next(mem, w, item)) {
                ++seen[static_cast<std::size_t>(item)];
                co_await mem.work(80);
            }
        });
        for (int i = 1; i <= 40; ++i)
            EXPECT_EQ(seen[static_cast<std::size_t>(i)], 1)
                << "item " << i;
        m.checkInvariants();
    }
}

TEST(StealScheduler, DynamicChildrenAllProcessed)
{
    // Each item spawns children down to a depth; total processed must
    // equal the full tree size regardless of stealing.
    Machine m(cfg(8));
    StealScheduler sched = StealScheduler::create(m, 2048);
    sched.debugSeed(m, {1});   // root at depth encoded in value
    // item encoding: depth in low bits
    int processed = 0;
    m.run([&](Mem &mem, int tid) -> Task<void> {
        StealScheduler::Worker w(tid);
        Word item = 0;
        while (co_await sched.next(mem, w, item)) {
            ++processed;
            co_await mem.work(60);
            if (item <= 4) {   // depths 1..4 spawn 2 children each
                co_await sched.add(mem, w, item + 1);
                co_await sched.add(mem, w, item + 1);
            }
        }
    });
    // Tree: 1 + 2 + 4 + 8 + 16 = 31 nodes
    EXPECT_EQ(processed, 31);
}

// ------------------------------------------------------------------
// SpinLock under adversarial protocols
// ------------------------------------------------------------------

TEST(SpinLock, ExclusionHoldsUnderDir1SW)
{
    Machine m(cfg(8, ProtocolConfig::dir1sw()));
    SpinLock lock = SpinLock::create(m, 3);
    Addr shared = m.allocOn(4, blockBytes, blockBytes);
    m.debugWrite(shared, 0);
    m.run([&](Mem &mem, int) -> Task<void> {
        for (int i = 0; i < 5; ++i) {
            co_await lock.acquire(mem);
            Word v = co_await mem.read(shared);
            co_await mem.work(17);
            co_await mem.write(shared, v + 1);
            co_await lock.release(mem);
        }
    });
    EXPECT_EQ(m.debugRead(shared), 40u);
    m.checkInvariants();
}

TEST(FifoLock, ExclusionAndProgressUnderContention)
{
    Machine m(cfg(8));
    FifoLock lock = FifoLock::create(m, 0);
    Addr shared = m.allocOn(1, blockBytes, blockBytes);
    m.debugWrite(shared, 0);
    m.run([&](Mem &mem, int) -> Task<void> {
        for (int i = 0; i < 6; ++i) {
            co_await lock.acquire(mem);
            Word v = co_await mem.read(shared);
            co_await mem.work(19);
            co_await mem.write(shared, v + 1);
            co_await lock.release(mem);
        }
    });
    EXPECT_EQ(m.debugRead(shared), 48u);
    m.checkInvariants();
}

TEST(FifoLock, ServesWaitersInTicketOrder)
{
    // Threads stagger their arrival; under a FIFO lock the critical
    // sections must execute in arrival order.
    Machine m(cfg(4));
    FifoLock lock = FifoLock::create(m, 0);
    std::vector<int> order;
    m.run([&](Mem &mem, int tid) -> Task<void> {
        co_await mem.work(static_cast<Cycles>(500 * tid + 1));
        co_await lock.acquire(mem);
        order.push_back(tid);
        co_await mem.work(2000);   // outlast later arrivals' spins
        co_await lock.release(mem);
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// ------------------------------------------------------------------
// Machine fast barrier
// ------------------------------------------------------------------

TEST(HwBarrier, AllThreadsLeaveTogether)
{
    Machine m(cfg(8));
    std::vector<Tick> exit_ticks(8, 0);
    m.run([&](Mem &mem, int tid) -> Task<void> {
        co_await mem.work(static_cast<Cycles>(100 * (tid + 1)));
        co_await mem.hwBarrier();
        exit_ticks[static_cast<std::size_t>(tid)] =
            mem.machine().now();
    });
    Tick first = *std::min_element(exit_ticks.begin(),
                                   exit_ticks.end());
    Tick last = *std::max_element(exit_ticks.begin(),
                                  exit_ticks.end());
    // All released within the barrier latency window.
    EXPECT_LE(last - first, m.barrierLatency + 8);
    EXPECT_GE(first, 800u);   // nobody leaves before the slowest
}
