/**
 * @file
 * End-to-end tests for the serving front end (exp/serve.hh): a real
 * server on a Unix socket, driven by raw socket clients. Covers the
 * response-path regressions (non-string tags echoed on the error
 * path, authoritative source reporting), the strict request parse
 * (duplicate keys, garbage, oversized lines), server-side sweeps
 * (expansion order, per-cell byte-identity with direct execution),
 * the multi-client model (concurrent clients, hang-up mid-sweep),
 * LRU eviction accounting through the stats op, and the robustness
 * surface: the TCP listener, stale-socket takeover vs live-socket
 * refusal, overload shedding with retry hints, cursor-chunked sweeps
 * resumed across connections (raw protocol and ServeClient under
 * chaos kills), idle timeouts, and SIGTERM drain.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "exp/cache/result_cache.hh"
#include "exp/client.hh"
#include "exp/runner.hh"
#include "exp/serve.hh"
#include "mini_json.hh"

using namespace swex;

namespace
{

std::string
scratchDir(const std::string &tag)
{
    std::string tmpl = ::testing::TempDir() + "swexserve-" + tag +
                       "-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *d = mkdtemp(buf.data());
    EXPECT_NE(d, nullptr);
    return d != nullptr ? d : ".";
}

/** A raw line-oriented client on the server's Unix socket. */
struct Client
{
    int fd = -1;
    std::string buf;

    ~Client() { disconnect(); }

    bool
    connectTo(const std::string &path)
    {
        disconnect();
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return false;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof(addr.sun_path))
            return false;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            disconnect();
            return false;
        }
        return true;
    }

    bool
    connectTcp(int port)
    {
        disconnect();
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return false;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        addr.sin_addr.s_addr = ::inet_addr("127.0.0.1");
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            disconnect();
            return false;
        }
        return true;
    }

    void
    disconnect()
    {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
        buf.clear();
    }

    /** Best-effort send (MSG_NOSIGNAL: a server-closed socket must
     *  not kill the test with SIGPIPE). */
    void
    sendLine(const std::string &line)
    {
        std::string out = line;
        out.push_back('\n');
        std::size_t off = 0;
        while (off < out.size()) {
            ssize_t n = ::send(fd, out.data() + off, out.size() - off,
                               MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return;
            }
            off += static_cast<std::size_t>(n);
        }
    }

    /** Blocking read of the next response line; false on EOF. */
    bool
    readLine(std::string &line)
    {
        for (;;) {
            std::size_t nl = buf.find('\n');
            if (nl != std::string::npos) {
                line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                return true;
            }
            char chunk[4096];
            ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                return false;
            }
            buf.append(chunk, static_cast<std::size_t>(n));
        }
    }

    /** Send one request and parse its (single) response line. */
    minijson::Value
    rpc(const std::string &request)
    {
        sendLine(request);
        std::string line;
        EXPECT_TRUE(readLine(line)) << "no response to: " << request;
        return minijson::parse(line.empty() ? "null" : line);
    }
};

/** serveLoop() on its own thread, joined (via a shutdown op) in the
 *  destructor if the test did not already stop it. */
struct TestServer
{
    serve::ServeConfig cfg;
    std::atomic<int> tcpPort{0};
    std::thread thread;
    int exitCode = -1;
    bool stopped = false;

    explicit TestServer(
        const std::string &tag, unsigned jobs = 4,
        std::uint64_t max_bytes = 0, std::uint64_t max_entries = 0,
        const std::function<void(serve::ServeConfig &)> &tweak = {})
    {
        const std::string dir = scratchDir(tag);
        cfg.socketPath = dir + "/sock";
        cfg.cacheDir = dir + "/cache";
        cfg.jobs = jobs;
        cfg.cacheMaxBytes = max_bytes;
        cfg.cacheMaxEntries = max_entries;
        cfg.tcpPortOut = &tcpPort;
        if (tweak)
            tweak(cfg);
        thread = std::thread([this] { exitCode = serve::serveLoop(cfg); });
        waitReady();
    }

    ~TestServer()
    {
        if (!stopped)
            stop();
    }

    void
    waitReady()
    {
        Client probe;
        for (int i = 0; i < 500; ++i) {
            if (probe.connectTo(cfg.socketPath))
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        FAIL() << "server never came up on " << cfg.socketPath;
    }

    /** Clean shutdown through the protocol; asserts exit code 0. */
    void
    stop()
    {
        stopped = true;
        Client c;
        if (c.connectTo(cfg.socketPath)) {
            minijson::Value r = c.rpc("{\"op\":\"shutdown\"}");
            EXPECT_TRUE(r.at("ok").boolean);
            EXPECT_TRUE(r.at("shutdown").boolean);
        }
        thread.join();
        EXPECT_EQ(exitCode, 0);
    }
};

/** The spec a served {"app":"worker","nodes":4,...} request builds,
 *  mirrored locally so tests can compare against direct execution. */
ExperimentSpec
workerCell(const std::string &proto, std::uint64_t seed)
{
    ExperimentSpec s;
    s.id = "serve";
    s.app = "worker";
    s.nodes = 4;
    s.victimEntries = 6;
    s.protocol = proto == "h2" ? ProtocolConfig::hw(2)
                               : ProtocolConfig::hw(5);
    s.seed = seed;
    return s;
}

std::string
canonicalJson(const RunRecord &r)
{
    std::ostringstream os;
    r.writeJson(os, /*canonical=*/true);
    return os.str();
}

/** The raw "record" value of a response line — the envelope's last
 *  member, so exactly the bytes between "record": and the final
 *  closing brace. Byte-level on purpose: the gate is byte-identity
 *  with direct execution, not structural equality. */
std::string
recordBytes(const std::string &line)
{
    const std::string key = "\"record\":";
    std::size_t pos = line.find(key);
    EXPECT_NE(pos, std::string::npos) << line;
    if (pos == std::string::npos)
        return "";
    pos += key.size();
    return line.substr(pos, line.size() - pos - 1);
}

} // anonymous namespace

TEST(Serve, RunReportsAuthoritativeSourceAndByteIdenticalRecords)
{
    setQuiet(true);
    TestServer server("basic");
    Client c;
    ASSERT_TRUE(c.connectTo(server.cfg.socketPath));

    const std::string req =
        "{\"op\":\"run\",\"app\":\"worker\",\"nodes\":4,"
        "\"protocol\":\"h2\",\"seed\":7,\"tag\":\"t\","
        "\"canonical\":true}";

    c.sendLine(req);
    std::string cold_line;
    ASSERT_TRUE(c.readLine(cold_line));
    minijson::Value cold = minijson::parse(cold_line);
    EXPECT_TRUE(cold.at("ok").boolean);
    EXPECT_EQ(cold.at("tag").str, "t");
    EXPECT_EQ(cold.at("source").str, "sim");

    // Same cell again: now the cache is authoritative, and the
    // response says so because execute() reported it — not because
    // the serve path guessed with a pre-execution probe.
    c.sendLine(req);
    std::string warm_line;
    ASSERT_TRUE(c.readLine(warm_line));
    minijson::Value warm = minijson::parse(warm_line);
    EXPECT_EQ(warm.at("source").str, "cache");

    // Hot or cold, the record bytes match a direct execution.
    Runner direct(/*fail_fast=*/false);
    const std::string want = canonicalJson(direct.execute(
        workerCell("h2", 7)));
    EXPECT_EQ(recordBytes(cold_line), want);
    EXPECT_EQ(recordBytes(warm_line), want);

    server.stop();
}

TEST(Serve, NonStringTagIsRejectedButEchoed)
{
    setQuiet(true);
    TestServer server("badtag", 1);
    Client c;
    ASSERT_TRUE(c.connectTo(server.cfg.socketPath));

    minijson::Value num = c.rpc("{\"op\":\"run\",\"tag\":7}");
    EXPECT_FALSE(num.at("ok").boolean);
    ASSERT_EQ(num.at("tag").type, minijson::Value::Type::Number);
    EXPECT_EQ(num.at("tag").number, 7);
    EXPECT_NE(num.at("error").str.find("tag"), std::string::npos);

    // Structured tags echo back as the JSON they were.
    minijson::Value arr = c.rpc("{\"op\":\"run\",\"tag\":[1,\"x\"]}");
    EXPECT_FALSE(arr.at("ok").boolean);
    ASSERT_EQ(arr.at("tag").type, minijson::Value::Type::Array);
    ASSERT_EQ(arr.at("tag").array.size(), 2u);
    EXPECT_EQ(arr.at("tag").array[1].str, "x");

    server.stop();
}

TEST(Serve, DuplicateRequestKeysAreRejected)
{
    setQuiet(true);
    TestServer server("dup", 1);
    Client c;
    ASSERT_TRUE(c.connectTo(server.cfg.socketPath));

    minijson::Value top = c.rpc(
        "{\"op\":\"run\",\"app\":\"worker\",\"nodes\":4,\"nodes\":8}");
    EXPECT_FALSE(top.at("ok").boolean);
    EXPECT_NE(top.at("error").str.find("duplicate key 'nodes'"),
              std::string::npos);

    // Nested objects are held to the same standard.
    minijson::Value nested = c.rpc(
        "{\"op\":\"run\",\"app\":\"worker\",\"nodes\":4,"
        "\"params\":{\"wss\":\"3\",\"wss\":\"4\"}}");
    EXPECT_FALSE(nested.at("ok").boolean);
    EXPECT_NE(nested.at("error").str.find("duplicate key 'wss'"),
              std::string::npos);

    server.stop();
}

TEST(Serve, GarbageAndOversizedLinesNeverTakeTheServerDown)
{
    setQuiet(true);
    TestServer server("garbage", 1);

    {
        Client c;
        ASSERT_TRUE(c.connectTo(server.cfg.socketPath));
        EXPECT_FALSE(c.rpc("this is not json").at("ok").boolean);
        EXPECT_FALSE(c.rpc("[1,2,3]").at("ok").boolean);
        EXPECT_FALSE(c.rpc("{\"op\":\"run\",\"app\":").at("ok").boolean);
        // The connection survived all of it.
        EXPECT_TRUE(c.rpc("{\"op\":\"stats\"}").at("ok").boolean);
    }

    {
        // A >1MiB line without a newline: the server answers a
        // structured error and drops the connection rather than
        // buffering without bound.
        Client c;
        ASSERT_TRUE(c.connectTo(server.cfg.socketPath));
        std::string huge(2u << 20, 'a');
        c.sendLine(huge);
        std::string line;
        ASSERT_TRUE(c.readLine(line));
        minijson::Value resp = minijson::parse(line);
        EXPECT_FALSE(resp.at("ok").boolean);
        EXPECT_NE(resp.at("error").str.find("too long"),
                  std::string::npos);
        EXPECT_FALSE(c.readLine(line)) << "connection not closed";
    }

    // And a fresh client still gets service.
    Client after;
    ASSERT_TRUE(after.connectTo(server.cfg.socketPath));
    EXPECT_TRUE(after.rpc("{\"op\":\"stats\"}").at("ok").boolean);

    server.stop();
}

TEST(Serve, SweepStreamsEveryCellByteIdenticalToDirectExecution)
{
    setQuiet(true);
    TestServer server("sweep");
    Client c;
    ASSERT_TRUE(c.connectTo(server.cfg.socketPath));

    c.sendLine("{\"op\":\"sweep\",\"app\":\"worker\",\"nodes\":4,"
               "\"tag\":\"grid\",\"canonical\":true,"
               "\"grid\":{\"protocol\":[\"h2\",\"h5\"],"
               "\"seed\":[1,2]}}");

    // 4 cell lines in completion order, then the completion line.
    std::vector<std::string> cell_lines(4);
    bool done = false;
    for (int i = 0; i < 5; ++i) {
        std::string line;
        ASSERT_TRUE(c.readLine(line));
        minijson::Value v = minijson::parse(line);
        ASSERT_TRUE(v.at("ok").boolean) << line;
        EXPECT_EQ(v.at("tag").str, "grid");
        if (v.has("sweep_done")) {
            EXPECT_FALSE(done) << "two completion lines";
            EXPECT_EQ(v.at("cells").number, 4);
            done = true;
            EXPECT_EQ(i, 4) << "completion line before the last cell";
            continue;
        }
        EXPECT_EQ(v.at("of").number, 4);
        int cell = static_cast<int>(v.at("cell").number);
        ASSERT_GE(cell, 0);
        ASSERT_LT(cell, 4);
        EXPECT_TRUE(cell_lines[cell].empty()) << "cell repeated";
        cell_lines[cell] = line;
    }
    ASSERT_TRUE(done);

    // Row-major, last grid key fastest: cell k is (protocol[k/2],
    // seed[k%2]) — and every record is the bytes direct execution of
    // that cell produces.
    Runner direct(/*fail_fast=*/false);
    const char *protos[2] = {"h2", "h5"};
    const std::uint64_t seeds[2] = {1, 2};
    for (int k = 0; k < 4; ++k) {
        minijson::Value v = minijson::parse(cell_lines[k]);
        std::ostringstream want_key;
        want_key << "protocol=" << protos[k / 2] << " seed="
                 << seeds[k % 2];
        EXPECT_EQ(v.at("cell_key").str, want_key.str());
        EXPECT_EQ(recordBytes(cell_lines[k]),
                  canonicalJson(direct.execute(
                      workerCell(protos[k / 2], seeds[k % 2]))));
    }

    // All-or-nothing validation: one bad cell fails the whole sweep
    // with the offending cell named, and nothing runs.
    minijson::Value before = c.rpc("{\"op\":\"stats\"}");
    const double misses = before.at("stats").at("misses").number;
    minijson::Value bad = c.rpc(
        "{\"op\":\"sweep\",\"app\":\"worker\",\"nodes\":4,"
        "\"grid\":{\"protocol\":[\"h2\",\"bogus\"]}}");
    EXPECT_FALSE(bad.at("ok").boolean);
    EXPECT_NE(bad.at("error").str.find("sweep cell 1"),
              std::string::npos);
    minijson::Value after = c.rpc("{\"op\":\"stats\"}");
    EXPECT_EQ(after.at("stats").at("misses").number, misses)
        << "a rejected sweep must not execute any cell";

    // Grid keys cannot silently override base fields.
    minijson::Value clash = c.rpc(
        "{\"op\":\"sweep\",\"app\":\"worker\",\"nodes\":4,"
        "\"grid\":{\"nodes\":[4,8]}}");
    EXPECT_FALSE(clash.at("ok").boolean);
    EXPECT_NE(clash.at("error").str.find("duplicates"),
              std::string::npos);

    server.stop();
}

TEST(Serve, ConcurrentClientsGetByteIdenticalResponses)
{
    setQuiet(true);
    TestServer server("concurrent");

    const std::string sweep_req =
        "{\"op\":\"sweep\",\"app\":\"worker\",\"nodes\":4,"
        "\"canonical\":true,"
        "\"grid\":{\"protocol\":[\"h2\",\"h5\"],\"seed\":[1,2]}}";

    // Each client interleaves stats, a full sweep, a single run, and
    // stats again — all concurrently against one server. Gate:
    // per-cell records collected by every client are byte-identical.
    constexpr int clients = 3;
    std::vector<std::vector<std::string>> records(
        clients, std::vector<std::string>(4));
    std::vector<std::string> run_records(clients);
    std::vector<char> passed(clients, 0);

    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            Client c;
            if (!c.connectTo(server.cfg.socketPath))
                return;
            if (!c.rpc("{\"op\":\"stats\"}").at("ok").boolean)
                return;
            c.sendLine(sweep_req);
            int seen = 0;
            for (;;) {
                std::string line;
                if (!c.readLine(line))
                    return;
                minijson::Value v = minijson::parse(line);
                if (!v.at("ok").boolean)
                    return;
                if (v.has("sweep_done"))
                    break;
                int cell = static_cast<int>(v.at("cell").number);
                records[t][static_cast<std::size_t>(cell)] =
                    recordBytes(line);
                ++seen;
            }
            if (seen != 4)
                return;
            std::string run_line;
            c.sendLine("{\"op\":\"run\",\"app\":\"worker\","
                       "\"nodes\":4,\"protocol\":\"h2\",\"seed\":1,"
                       "\"canonical\":true}");
            if (!c.readLine(run_line))
                return;
            run_records[t] = recordBytes(run_line);
            if (!c.rpc("{\"op\":\"stats\"}").at("ok").boolean)
                return;
            passed[t] = true;
        });
    }
    for (auto &th : threads)
        th.join();

    Runner direct(/*fail_fast=*/false);
    const char *protos[2] = {"h2", "h5"};
    for (int t = 0; t < clients; ++t) {
        ASSERT_TRUE(passed[t]) << "client " << t << " failed";
        for (int k = 0; k < 4; ++k)
            EXPECT_EQ(records[t][k],
                      canonicalJson(direct.execute(workerCell(
                          protos[k / 2],
                          static_cast<std::uint64_t>(k % 2 + 1)))))
                << "client " << t << " cell " << k;
        EXPECT_EQ(run_records[t],
                  canonicalJson(direct.execute(workerCell("h2", 1))));
    }

    server.stop();
}

TEST(Serve, ClientHangUpMidSweepLeavesServerAndCacheIntact)
{
    setQuiet(true);
    TestServer server("hangup");

    // Kick off a 8-cell sweep, read exactly one cell, and vanish.
    {
        Client doomed;
        ASSERT_TRUE(doomed.connectTo(server.cfg.socketPath));
        doomed.sendLine(
            "{\"op\":\"sweep\",\"app\":\"worker\",\"nodes\":4,"
            "\"canonical\":true,\"grid\":{\"protocol\":[\"h2\","
            "\"h5\"],\"seed\":[1,2,3,4]}}");
        std::string line;
        ASSERT_TRUE(doomed.readLine(line));
        doomed.disconnect();
    }

    // The server keeps serving other clients immediately — no global
    // drain on a hang-up.
    Client c;
    ASSERT_TRUE(c.connectTo(server.cfg.socketPath));
    minijson::Value run = c.rpc(
        "{\"op\":\"run\",\"app\":\"worker\",\"nodes\":8,"
        "\"canonical\":true}");
    EXPECT_TRUE(run.at("ok").boolean);

    // Shutdown drains the orphaned cells; they must all have landed
    // in the cache (a hang-up wastes sends, not simulations).
    server.stop();
    cache::ResultCache rcache(server.cfg.cacheDir);
    const char *protos[2] = {"h2", "h5"};
    for (int k = 0; k < 8; ++k)
        EXPECT_TRUE(rcache.contains(workerCell(
            protos[k / 4], static_cast<std::uint64_t>(k % 4 + 1))))
            << "orphaned sweep cell " << k << " missing from cache";
}

TEST(Serve, StatsSurfacesLruEvictions)
{
    setQuiet(true);
    TestServer server("evict", /*jobs=*/1, /*max_bytes=*/0,
                      /*max_entries=*/1);
    Client c;
    ASSERT_TRUE(c.connectTo(server.cfg.socketPath));

    EXPECT_TRUE(c.rpc("{\"op\":\"run\",\"app\":\"worker\","
                      "\"nodes\":4,\"seed\":1}").at("ok").boolean);
    EXPECT_TRUE(c.rpc("{\"op\":\"run\",\"app\":\"worker\","
                      "\"nodes\":4,\"seed\":2}").at("ok").boolean);

    minijson::Value stats = c.rpc("{\"op\":\"stats\"}");
    ASSERT_TRUE(stats.at("ok").boolean);
    EXPECT_GE(stats.at("stats").at("evictions").number, 1);
    EXPECT_EQ(stats.at("stats").at("stores").number, 2);

    server.stop();
}

TEST(Serve, TcpListenerSpeaksTheSameProtocolByteForByte)
{
    setQuiet(true);
    TestServer server("tcp", 2, 0, 0, [](serve::ServeConfig &c) {
        c.tcpHostPort = "127.0.0.1:0";
    });

    // The kernel-assigned port is published through tcpPortOut once
    // the TCP listener is bound.
    int port = 0;
    for (int i = 0; i < 500 && port == 0; ++i) {
        port = server.tcpPort.load();
        if (port == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_GT(port, 0) << "TCP port never published";

    Client tcp;
    ASSERT_TRUE(tcp.connectTcp(port));
    tcp.sendLine("{\"op\":\"run\",\"app\":\"worker\",\"nodes\":4,"
                 "\"protocol\":\"h5\",\"seed\":3,\"canonical\":true}");
    std::string line;
    ASSERT_TRUE(tcp.readLine(line));
    minijson::Value v = minijson::parse(line);
    ASSERT_TRUE(v.at("ok").boolean) << line;

    Runner direct(/*fail_fast=*/false);
    EXPECT_EQ(recordBytes(line),
              canonicalJson(direct.execute(workerCell("h5", 3))));

    // Both listeners front the same server: the Unix side sees the
    // cell the TCP side just stored, and the accept counter covers
    // both.
    Client un;
    ASSERT_TRUE(un.connectTo(server.cfg.socketPath));
    minijson::Value warm = un.rpc(
        "{\"op\":\"run\",\"app\":\"worker\",\"nodes\":4,"
        "\"protocol\":\"h5\",\"seed\":3,\"canonical\":true}");
    EXPECT_EQ(warm.at("source").str, "cache");
    minijson::Value stats = un.rpc("{\"op\":\"stats\"}");
    EXPECT_GE(stats.at("stats").at("accepted").number, 2);

    server.stop();
}

TEST(Serve, LiveSocketIsRefusedButStaleSocketIsTakenOver)
{
    setQuiet(true);

    // The tweak runs before the server thread starts: plant a stale
    // socket file (bound once, listener long gone) at the exact path
    // the server is about to claim. Coming up at all proves the
    // connect() probe classified it as dead and unlinked it.
    TestServer server("stale", 1, 0, 0, [](serve::ServeConfig &c) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        ASSERT_LT(c.socketPath.size(), sizeof(addr.sun_path));
        std::memcpy(addr.sun_path, c.socketPath.c_str(),
                    c.socketPath.size() + 1);
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)), 0);
        ::close(fd);
    });
    Client c;
    ASSERT_TRUE(c.connectTo(server.cfg.socketPath));
    EXPECT_TRUE(c.rpc("{\"op\":\"stats\"}").at("ok").boolean);

    // A second server pointed at the live socket must refuse to
    // start (exit 1) instead of unlinking it out from under the
    // running one — and the running one must be unharmed.
    serve::ServeConfig usurper;
    usurper.socketPath = server.cfg.socketPath;
    usurper.cacheDir = scratchDir("stale-usurper") + "/cache";
    EXPECT_EQ(serve::serveLoop(usurper), 1);
    EXPECT_TRUE(c.rpc("{\"op\":\"stats\"}").at("ok").boolean);

    server.stop();
}

TEST(Serve, OverloadIsShedWithARetryHintNotAHang)
{
    setQuiet(true);
    TestServer server("shed", 1, 0, 0, [](serve::ServeConfig &c) {
        c.maxQueuedUnits = 4;
    });
    Client c;
    ASSERT_TRUE(c.connectTo(server.cfg.socketPath));

    // An 8-cell chunk against a 4-unit admission queue is refused
    // deterministically — even on an idle server — with the
    // structured busy error and a retry hint, and nothing executes.
    minijson::Value before = c.rpc("{\"op\":\"stats\"}");
    const double misses = before.at("stats").at("misses").number;
    minijson::Value busy = c.rpc(
        "{\"op\":\"sweep\",\"app\":\"worker\",\"nodes\":4,"
        "\"canonical\":true,\"grid\":{\"protocol\":[\"h2\",\"h5\"],"
        "\"seed\":[1,2,3,4]}}");
    EXPECT_FALSE(busy.at("ok").boolean);
    EXPECT_EQ(busy.at("error_kind").str, "busy");
    ASSERT_TRUE(busy.has("retry_after_ms"));
    EXPECT_GE(busy.at("retry_after_ms").number, 25);

    minijson::Value after = c.rpc("{\"op\":\"stats\"}");
    EXPECT_EQ(after.at("stats").at("misses").number, misses)
        << "a shed sweep must not execute any cell";
    EXPECT_GE(after.at("stats").at("shed").number, 1);
    EXPECT_EQ(after.at("stats").at("queued").number, 0);

    // The same grid fits chunk by chunk: a 2-cell chunk is admitted,
    // so the busy answer was load shedding, not a broken request.
    c.sendLine("{\"op\":\"sweep\",\"app\":\"worker\",\"nodes\":4,"
               "\"canonical\":true,\"cursor\":0,\"chunk\":2,"
               "\"grid\":{\"protocol\":[\"h2\",\"h5\"],"
               "\"seed\":[1,2,3,4]}}");
    int cells = 0;
    for (;;) {
        std::string line;
        ASSERT_TRUE(c.readLine(line));
        minijson::Value v = minijson::parse(line);
        ASSERT_TRUE(v.at("ok").boolean) << line;
        if (v.has("sweep_chunk_done")) {
            EXPECT_EQ(v.at("next_cursor").number, 2);
            EXPECT_EQ(v.at("cells").number, 8);
            break;
        }
        ++cells;
    }
    EXPECT_EQ(cells, 2);

    server.stop();
}

TEST(Serve, ChunkedSweepResumesAcrossConnectionsByteIdentical)
{
    setQuiet(true);
    TestServer server("chunk");

    // 2x3 grid fetched as a 4-cell chunk on one connection and the
    // 2-cell remainder on a *fresh* connection: the cursor is client
    // state, so resume needs nothing from the server but the cache.
    const std::string base =
        "\"app\":\"worker\",\"nodes\":4,\"canonical\":true,"
        "\"grid\":{\"protocol\":[\"h2\",\"h5\"],\"seed\":[1,2,3]}";
    std::vector<std::string> cell_lines(6);

    {
        Client first;
        ASSERT_TRUE(first.connectTo(server.cfg.socketPath));
        first.sendLine("{\"op\":\"sweep\"," + base +
                       ",\"cursor\":0,\"chunk\":4}");
        for (int i = 0; i < 5; ++i) {
            std::string line;
            ASSERT_TRUE(first.readLine(line));
            minijson::Value v = minijson::parse(line);
            ASSERT_TRUE(v.at("ok").boolean) << line;
            if (v.has("sweep_chunk_done")) {
                EXPECT_EQ(v.at("cells").number, 6);
                EXPECT_EQ(v.at("next_cursor").number, 4);
                EXPECT_EQ(i, 4);
                continue;
            }
            EXPECT_EQ(v.at("of").number, 6);
            int cell = static_cast<int>(v.at("cell").number);
            ASSERT_GE(cell, 0);
            ASSERT_LT(cell, 4) << "chunk leaked cells past cursor+chunk";
            cell_lines[static_cast<std::size_t>(cell)] = line;
        }
    }

    Client second;
    ASSERT_TRUE(second.connectTo(server.cfg.socketPath));
    second.sendLine("{\"op\":\"sweep\"," + base +
                    ",\"cursor\":4,\"chunk\":4}");
    for (int i = 0; i < 3; ++i) {
        std::string line;
        ASSERT_TRUE(second.readLine(line));
        minijson::Value v = minijson::parse(line);
        ASSERT_TRUE(v.at("ok").boolean) << line;
        if (v.has("sweep_done")) {
            EXPECT_EQ(v.at("cells").number, 6);
            EXPECT_EQ(i, 2);
            continue;
        }
        int cell = static_cast<int>(v.at("cell").number);
        ASSERT_GE(cell, 4) << "resumed chunk re-sent an earlier cell";
        ASSERT_LT(cell, 6);
        cell_lines[static_cast<std::size_t>(cell)] = line;
    }

    // Assembled across two connections, every record matches direct
    // execution byte for byte (row-major, seed fastest).
    Runner direct(/*fail_fast=*/false);
    const char *protos[2] = {"h2", "h5"};
    for (int k = 0; k < 6; ++k) {
        ASSERT_FALSE(cell_lines[k].empty()) << "cell " << k;
        EXPECT_EQ(recordBytes(cell_lines[k]),
                  canonicalJson(direct.execute(workerCell(
                      protos[k / 3],
                      static_cast<std::uint64_t>(k % 3 + 1)))))
            << "cell " << k;
    }

    // A cursor past the grid is a structural error, not a hang.
    minijson::Value bad = second.rpc(
        "{\"op\":\"sweep\"," + base + ",\"cursor\":6,\"chunk\":4}");
    EXPECT_FALSE(bad.at("ok").boolean);
    EXPECT_EQ(bad.at("error_kind").str, "bad_request");

    server.stop();
}

TEST(Serve, ClientLibraryResumesAChaosKilledSweepByteIdentical)
{
    setQuiet(true);
    TestServer server("chaosresume");

    client::ClientConfig ccfg;
    ccfg.address = server.cfg.socketPath;
    ccfg.chunk = 2;
    ccfg.maxAttempts = 50;
    ccfg.backoffBaseMs = 1;
    ccfg.backoffMaxMs = 5;
    ccfg.chaosKillPerMille = 350;
    ccfg.chaosSeed = 11;
    client::ServeClient cli(ccfg);

    client::SweepResult res = cli.runSweep(
        "{\"op\":\"sweep\",\"app\":\"worker\",\"nodes\":4,"
        "\"canonical\":true,\"grid\":{\"protocol\":[\"h2\",\"h5\"],"
        "\"seed\":[1,2,3]}}");
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.cells, 6u);
    EXPECT_GE(res.reconnects, 1u)
        << "chaos seed produced no kills; the test lost its point";

    Runner direct(/*fail_fast=*/false);
    const char *protos[2] = {"h2", "h5"};
    for (std::size_t k = 0; k < 6; ++k)
        EXPECT_EQ(res.records[k],
                  canonicalJson(direct.execute(workerCell(
                      protos[k / 3],
                      static_cast<std::uint64_t>(k % 3 + 1)))))
            << "cell " << k;

    server.stop();
}

TEST(Serve, IdleTimeoutClosesQuietClientsButNeverWaitingOnes)
{
    setQuiet(true);
    TestServer server("idle", 1, 0, 0, [](serve::ServeConfig &c) {
        c.idleTimeoutMs = 200;
    });

    // A client mid-sweep is never idle — waiting on results counts as
    // activity even if some cell simulates longer than the timeout.
    Client busy;
    ASSERT_TRUE(busy.connectTo(server.cfg.socketPath));
    busy.sendLine("{\"op\":\"sweep\",\"app\":\"worker\",\"nodes\":8,"
                  "\"canonical\":true,"
                  "\"grid\":{\"protocol\":[\"h2\",\"h5\"],"
                  "\"seed\":[1,2,3,4]}}");
    int cells = 0;
    bool done = false;
    while (!done) {
        std::string line;
        ASSERT_TRUE(busy.readLine(line))
            << "server idle-closed a client awaiting sweep results";
        minijson::Value v = minijson::parse(line);
        ASSERT_TRUE(v.at("ok").boolean) << line;
        if (v.has("sweep_done"))
            done = true;
        else
            ++cells;
    }
    EXPECT_EQ(cells, 8);

    // The same connection gone quiet gets the structured idle error
    // and then EOF — and the close is accounted for in the stats.
    std::string line;
    ASSERT_TRUE(busy.readLine(line));
    minijson::Value idle = minijson::parse(line);
    EXPECT_FALSE(idle.at("ok").boolean);
    EXPECT_EQ(idle.at("error_kind").str, "idle_timeout");
    EXPECT_FALSE(busy.readLine(line)) << "connection not closed";

    Client fresh;
    ASSERT_TRUE(fresh.connectTo(server.cfg.socketPath));
    minijson::Value stats = fresh.rpc("{\"op\":\"stats\"}");
    EXPECT_GE(stats.at("stats").at("idle_closed").number, 1);

    server.stop();
}

TEST(Serve, SigtermDrainsInFlightWorkAndExitsZero)
{
    setQuiet(true);
    TestServer server("sigterm", 2, 0, 0, [](serve::ServeConfig &c) {
        c.handleSignals = true;
    });
    Client c;
    ASSERT_TRUE(c.connectTo(server.cfg.socketPath));
    EXPECT_TRUE(c.rpc("{\"op\":\"run\",\"app\":\"worker\","
                      "\"nodes\":4,\"canonical\":true}")
                    .at("ok").boolean);

    // The loop's own handler (installed because handleSignals is on,
    // restored before serveLoop returns) turns SIGTERM into a drain:
    // the thread exits 0 instead of the signal killing this test.
    ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
    server.stopped = true;
    server.thread.join();
    EXPECT_EQ(server.exitCode, 0);
    EXPECT_FALSE(::access(server.cfg.socketPath.c_str(), F_OK) == 0)
        << "drained server left its socket behind";
}

TEST(WireJson, NestingDepthIsBoundedNotAStackOverflow)
{
    // Depth exactly at the bound parses...
    {
        std::string ok_doc(wire::JsonParser::maxDepth, '[');
        ok_doc += "1";
        ok_doc.append(wire::JsonParser::maxDepth, ']');
        wire::JsonParser p(ok_doc);
        wire::JsonValue v;
        EXPECT_TRUE(p.parseWhole(v)) << p.err;
    }
    // ...one level past it is refused with a structured error...
    {
        std::string deep(wire::JsonParser::maxDepth + 1, '[');
        deep += "1";
        deep.append(wire::JsonParser::maxDepth + 1, ']');
        wire::JsonParser p(deep);
        wire::JsonValue v;
        EXPECT_FALSE(p.parseWhole(v));
        EXPECT_NE(p.err.find("nesting"), std::string::npos) << p.err;
    }
    // ...and a line-cap-sized run of '[' (the stack-overflow attack:
    // recursion happens per bracket before any close is needed) fails
    // the same way instead of crashing the process.
    {
        std::string attack(512u << 10, '[');
        wire::JsonParser p(attack);
        wire::JsonValue v;
        EXPECT_FALSE(p.parseWhole(v));
        EXPECT_NE(p.err.find("nesting"), std::string::npos) << p.err;
    }
    // renderJson shares the bound: a hand-built value nested past it
    // renders the excess as null instead of recursing without limit.
    {
        wire::JsonValue deep;
        deep.kind = wire::JsonValue::Kind::Number;
        deep.raw = "7";
        for (int i = 0; i < wire::JsonParser::maxDepth + 6; ++i) {
            wire::JsonValue wrap;
            wrap.kind = wire::JsonValue::Kind::Array;
            wrap.items.push_back(std::move(deep));
            deep = std::move(wrap);
        }
        std::string out;
        wire::renderJson(deep, out);
        EXPECT_NE(out.find("null"), std::string::npos);
        EXPECT_EQ(out.find("7"), std::string::npos)
            << "value past the bound should have been cut";
    }
}

TEST(Serve, DeeplyNestedRequestGetsAStructuredErrorNotACrash)
{
    setQuiet(true);
    TestServer server("deepnest", 1);
    Client c;
    ASSERT_TRUE(c.connectTo(server.cfg.socketPath));

    // 400 KiB of '[' fits under the 1 MiB line cap, so it reaches the
    // parser — which must answer a structured error, not overflow the
    // reader thread's stack.
    minijson::Value deep = c.rpc(std::string(400u << 10, '['));
    EXPECT_FALSE(deep.at("ok").boolean);
    EXPECT_NE(deep.at("error").str.find("nesting"),
              std::string::npos);

    // Same for an object chain, and the connection survives both.
    std::string obj;
    for (int i = 0; i < 40'000; ++i)
        obj += "{\"a\":";
    minijson::Value nested = c.rpc(obj);
    EXPECT_FALSE(nested.at("ok").boolean);
    EXPECT_TRUE(c.rpc("{\"op\":\"stats\"}").at("ok").boolean);

    server.stop();
}

TEST(Serve, OversizedClientChunkIsClampedNotRejected)
{
    setQuiet(true);
    TestServer server("bigchunk");

    // Far past the server's 4096-per-request maximum: runSweep clamps
    // client-side instead of drawing a terminal bad_request.
    client::ClientConfig ccfg;
    ccfg.address = server.cfg.socketPath;
    ccfg.chunk = 1u << 20;
    client::ServeClient cli(ccfg);

    client::SweepResult res = cli.runSweep(
        "{\"op\":\"sweep\",\"app\":\"worker\",\"nodes\":4,"
        "\"canonical\":true,\"grid\":{\"protocol\":[\"h2\"],"
        "\"seed\":[1,2]}}");
    ASSERT_TRUE(res.ok) << res.errorKind << ": " << res.error;
    ASSERT_EQ(res.cells, 2u);

    Runner direct(/*fail_fast=*/false);
    for (std::size_t k = 0; k < 2; ++k)
        EXPECT_EQ(res.records[k],
                  canonicalJson(direct.execute(workerCell(
                      "h2", static_cast<std::uint64_t>(k + 1)))));

    server.stop();
}

TEST(Serve, DisconnectedClientsReaderThreadsAreReaped)
{
    setQuiet(true);
    TestServer server("reap", 1);

    // Churn a few clients; each disconnect retires a reader thread
    // that the accept loop must join promptly (not hold until
    // shutdown), which it accounts for in the stats.
    for (int i = 0; i < 3; ++i) {
        Client c;
        ASSERT_TRUE(c.connectTo(server.cfg.socketPath));
        EXPECT_TRUE(c.rpc("{\"op\":\"stats\"}").at("ok").boolean);
    }

    Client watcher;
    ASSERT_TRUE(watcher.connectTo(server.cfg.socketPath));
    double reaped = 0;
    for (int i = 0; i < 500; ++i) {
        minijson::Value stats = watcher.rpc("{\"op\":\"stats\"}");
        reaped = stats.at("stats").at("readers_reaped").number;
        if (reaped >= 3)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(reaped, 3)
        << "disconnected clients' reader threads were never joined";

    server.stop();
}

TEST(Serve, UnixConnectHonorsTheDeadlineAgainstAFullBacklog)
{
    // A listener that never accepts, with a saturated backlog: a
    // blocking AF_UNIX connect() would hang indefinitely, so the
    // client must use its bounded path and fail with a timeout.
    const std::string path = scratchDir("backlog") + "/sock";
    int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)), 0);
    ASSERT_EQ(::listen(lfd, 0), 0);

    std::vector<int> fillers;
    for (int i = 0; i < 16; ++i) {
        int f = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(f, 0);
        int fl = ::fcntl(f, F_GETFL, 0);
        ::fcntl(f, F_SETFL, fl | O_NONBLOCK);
        ::connect(f, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr));
        fillers.push_back(f);
    }

    client::ClientConfig ccfg;
    ccfg.address = path;
    ccfg.connectTimeoutMs = 200;
    client::ServeClient cli(ccfg);
    const auto start = std::chrono::steady_clock::now();
    std::string err;
    EXPECT_FALSE(cli.connect(&err));
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(elapsed, 5000) << "connect ignored its deadline";
    EXPECT_NE(err.find("connect"), std::string::npos) << err;

    for (int f : fillers)
        ::close(f);
    ::close(lfd);
    ::unlink(path.c_str());
}
