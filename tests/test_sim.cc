/**
 * @file
 * Unit tests for the simulation kernel: event queue determinism and
 * the coroutine Task machinery.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/task.hh"

using namespace swex;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenSequence)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, EventPrio::Processor);
    eq.schedule(5, [&] { order.push_back(0); }, EventPrio::Network);
    eq.schedule(5, [&] { order.push_back(1); }, EventPrio::Network);
    eq.schedule(5, [&] { order.push_back(3); }, EventPrio::Default);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 5u);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.run(15);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.numExecuted(), 7u);
}

namespace
{

Task<int>
makeFortyTwo()
{
    co_return 42;
}

Task<int>
addOne(int x)
{
    int v = co_await makeFortyTwo();
    co_return v + x - 42 + 42;
}

Task<void>
chain(std::vector<int> &log)
{
    log.push_back(1);
    int v = co_await addOne(8);
    log.push_back(v);
}

/** Awaitable that parks the handle for manual resumption. */
struct ManualGate
{
    std::coroutine_handle<> parked;

    auto
    wait()
    {
        struct Awaiter
        {
            ManualGate &gate;
            bool await_ready() const noexcept { return false; }
            void
            await_suspend(std::coroutine_handle<> h) noexcept
            {
                gate.parked = h;
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }
};

Task<void>
suspender(ManualGate &gate, std::vector<int> &log)
{
    log.push_back(1);
    co_await gate.wait();
    log.push_back(2);
    co_await gate.wait();
    log.push_back(3);
}

Task<void>
thrower()
{
    co_await makeFortyTwo();
    throw std::runtime_error("boom");
}

} // anonymous namespace

TEST(Task, LazyStartAndNestedAwait)
{
    std::vector<int> log;
    Task<void> t = chain(log);
    EXPECT_TRUE(log.empty());   // lazy: nothing ran yet
    t.start();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(log, (std::vector<int>{1, 50}));
}

TEST(Task, SuspendAndManualResume)
{
    ManualGate gate;
    std::vector<int> log;
    Task<void> t = suspender(gate, log);
    t.start();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_FALSE(t.done());
    gate.parked.resume();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    gate.parked.resume();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Task, ValueResult)
{
    Task<int> t = makeFortyTwo();
    t.start();
    ASSERT_TRUE(t.done());
    EXPECT_EQ(t.result(), 42);
}

TEST(Task, ExceptionPropagatesToOwner)
{
    Task<void> t = thrower();
    t.start();
    ASSERT_TRUE(t.done());
    EXPECT_THROW(t.rethrowIfFailed(), std::runtime_error);
}

TEST(Task, MoveTransfersOwnership)
{
    Task<int> a = makeFortyTwo();
    Task<int> b = std::move(a);
    EXPECT_FALSE(a.valid());
    ASSERT_TRUE(b.valid());
    b.start();
    EXPECT_EQ(b.result(), 42);
}
