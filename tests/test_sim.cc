/**
 * @file
 * Unit tests for the simulation kernel: event queue determinism and
 * the coroutine Task machinery.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "base/rng.hh"
#include "sim/event_queue.hh"
#include "sim/task.hh"

using namespace swex;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenSequence)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, EventPrio::Processor);
    eq.schedule(5, [&] { order.push_back(0); }, EventPrio::Network);
    eq.schedule(5, [&] { order.push_back(1); }, EventPrio::Network);
    eq.schedule(5, [&] { order.push_back(3); }, EventPrio::Default);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 5u);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.run(15);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.numExecuted(), 7u);
}

TEST(IntrusiveEvent, ScheduleAndRun)
{
    EventQueue eq;
    int fired = 0;
    LambdaEvent e([&] { ++fired; });
    EXPECT_FALSE(e.scheduled());
    eq.schedule(e, 12);
    EXPECT_TRUE(e.scheduled());
    EXPECT_EQ(e.when(), 12u);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(e.scheduled());
    // The object is reusable once it has run.
    eq.scheduleIn(e, 3);
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 15u);
}

TEST(IntrusiveEvent, DescheduleCancels)
{
    EventQueue eq;
    int fired = 0;
    LambdaEvent near([&] { ++fired; });
    LambdaEvent far([&] { ++fired; });
    eq.schedule(near, 4);
    eq.schedule(far, EventQueue::wheelSize + 100);   // spill heap
    EXPECT_EQ(eq.size(), 2u);
    eq.deschedule(near);
    eq.deschedule(far);
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.numExecuted(), 0u);
}

TEST(IntrusiveEvent, RescheduleMovesIncludingSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    LambdaEvent a([&] { order.push_back(0); });
    LambdaEvent b([&] { order.push_back(1); });
    eq.schedule(a, 10);
    eq.schedule(b, 20);
    // Move a later and b earlier; then a again onto b's tick. A
    // same-tick reschedule reassigns the sequence number, so a now
    // runs after b.
    eq.reschedule(a, 30);
    eq.reschedule(b, 25);
    eq.reschedule(a, 25);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 0}));
    EXPECT_EQ(eq.curTick(), 25u);
}

TEST(IntrusiveEvent, DestructorDeschedules)
{
    EventQueue eq;
    int fired = 0;
    {
        LambdaEvent near([&] { ++fired; });
        LambdaEvent far([&] { ++fired; });
        eq.schedule(near, 5);
        eq.schedule(far, EventQueue::wheelSize + 9);
        EXPECT_EQ(eq.size(), 2u);
    }
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 0);
}

namespace
{

struct Widget
{
    int fired = 0;

    void tick() { ++fired; }

    MemberEvent<&Widget::tick> ev{*this, EventPrio::Controller};
};

} // anonymous namespace

TEST(IntrusiveEvent, MemberEventFires)
{
    EventQueue eq;
    Widget w;
    EXPECT_EQ(w.ev.prio(), EventPrio::Controller);
    eq.scheduleIn(w.ev, 7);
    eq.run();
    EXPECT_EQ(w.fired, 1);
}

/**
 * Determinism across the wheel/heap boundary: an event that waited
 * on the spill heap and one scheduled later directly into the wheel
 * can share a tick; (prio, seq) must still decide the order.
 */
TEST(EventQueue, WheelHeapBoundaryOrdering)
{
    EventQueue eq;
    std::vector<int> order;

    // Same priority: the far (heap-resident) event has the lower
    // sequence number and must run first.
    const Tick t1 = EventQueue::wheelSize + 5;
    LambdaEvent far1([&] { order.push_back(0); });
    LambdaEvent near1([&] { order.push_back(1); });
    LambdaEvent trig1([&] { eq.schedule(near1, t1); });
    eq.schedule(far1, t1);    // horizon exceeded: spill heap
    eq.schedule(trig1, 10);   // by tick 10, t1 is within the wheel
    eq.run();
    ASSERT_EQ(order, (std::vector<int>{0, 1}));

    // Priority beats sequence: a later-scheduled Network-priority
    // wheel event overtakes the Default-priority heap event.
    order.clear();
    const Tick t2 = eq.curTick() + EventQueue::wheelSize + 7;
    LambdaEvent far2([&] { order.push_back(0); });
    LambdaEvent near2([&] { order.push_back(1); }, EventPrio::Network);
    LambdaEvent trig2([&] { eq.schedule(near2, t2); });
    eq.schedule(far2, t2);
    eq.scheduleIn(trig2, 3);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

/**
 * Randomized replay: drive the two-level queue with a mixed stream
 * of schedules, cancels, reschedules (including same-tick), and
 * pops, with delays straddling the wheel horizon, and check every
 * execution against a naive reference model ordered by the global
 * (tick, priority, sequence) contract.
 */
TEST(EventQueue, DeterminismReplayAgainstReference)
{
    struct RefEv
    {
        Tick when;
        unsigned prio;
        std::uint64_t seq;
        int id;
    };

    constexpr int numEvents = 48;
    EventQueue eq;
    std::vector<std::pair<Tick, int>> fired;
    std::vector<std::unique_ptr<LambdaEvent>> evs;
    for (int i = 0; i < numEvents; ++i) {
        evs.push_back(std::make_unique<LambdaEvent>(
            [&fired, &eq, i] { fired.emplace_back(eq.curTick(), i); }));
    }

    std::vector<RefEv> ref;
    std::uint64_t nextSeq = 0;
    auto refPopMin = [&ref] {
        auto it = std::min_element(
            ref.begin(), ref.end(), [](const RefEv &a, const RefEv &b) {
                return std::tie(a.when, a.prio, a.seq) <
                       std::tie(b.when, b.prio, b.seq);
            });
        RefEv e = *it;
        ref.erase(it);
        return e;
    };
    auto refErase = [&ref](int id) {
        auto it = std::find_if(ref.begin(), ref.end(),
                               [id](const RefEv &e) {
                                   return e.id == id;
                               });
        ASSERT_NE(it, ref.end());
        ref.erase(it);
    };

    Rng rng(99);
    auto randDelay = [&rng]() -> Cycles {
        std::uint64_t k = rng.below(10);
        if (k == 0)
            return 0;                               // same tick
        if (k < 7)
            return rng.below(64);                   // wheel, near
        if (k < 9)
            return 1000 + rng.below(100);           // straddles horizon
        return EventQueue::wheelSize + rng.below(4096);   // heap
    };

    auto popAndCheck = [&] {
        std::size_t before = fired.size();
        ASSERT_TRUE(eq.runOne());
        ASSERT_EQ(fired.size(), before + 1);
        RefEv expect = refPopMin();
        EXPECT_EQ(fired.back().first, expect.when);
        EXPECT_EQ(fired.back().second, expect.id);
        EXPECT_EQ(eq.curTick(), expect.when);
    };

    for (int step = 0; step < 4000; ++step) {
        if (rng.below(100) < 55) {
            int i = static_cast<int>(rng.below(numEvents));
            LambdaEvent &e = *evs[static_cast<std::size_t>(i)];
            if (!e.scheduled()) {
                Cycles d = randDelay();
                auto p = static_cast<EventPrio>(rng.below(4));
                e.setPrio(p);
                eq.scheduleIn(e, d);
                ref.push_back({eq.curTick() + d,
                               static_cast<unsigned>(p), nextSeq++, i});
            } else if (rng.below(3) == 0) {
                eq.deschedule(e);
                refErase(i);
            } else {
                Cycles d = randDelay();
                eq.reschedule(e, eq.curTick() + d);
                refErase(i);
                ref.push_back({eq.curTick() + d,
                               static_cast<unsigned>(e.prio()),
                               nextSeq++, i});
            }
        } else if (!eq.empty()) {
            popAndCheck();
        }
        ASSERT_EQ(eq.size(), ref.size());
    }
    while (!eq.empty())
        popAndCheck();
    EXPECT_TRUE(ref.empty());
}

namespace
{

Task<int>
makeFortyTwo()
{
    co_return 42;
}

Task<int>
addOne(int x)
{
    int v = co_await makeFortyTwo();
    co_return v + x - 42 + 42;
}

Task<void>
chain(std::vector<int> &log)
{
    log.push_back(1);
    int v = co_await addOne(8);
    log.push_back(v);
}

/** Awaitable that parks the handle for manual resumption. */
struct ManualGate
{
    std::coroutine_handle<> parked;

    auto
    wait()
    {
        struct Awaiter
        {
            ManualGate &gate;
            bool await_ready() const noexcept { return false; }
            void
            await_suspend(std::coroutine_handle<> h) noexcept
            {
                gate.parked = h;
            }
            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }
};

Task<void>
suspender(ManualGate &gate, std::vector<int> &log)
{
    log.push_back(1);
    co_await gate.wait();
    log.push_back(2);
    co_await gate.wait();
    log.push_back(3);
}

Task<void>
thrower()
{
    co_await makeFortyTwo();
    throw std::runtime_error("boom");
}

} // anonymous namespace

TEST(Task, LazyStartAndNestedAwait)
{
    std::vector<int> log;
    Task<void> t = chain(log);
    EXPECT_TRUE(log.empty());   // lazy: nothing ran yet
    t.start();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(log, (std::vector<int>{1, 50}));
}

TEST(Task, SuspendAndManualResume)
{
    ManualGate gate;
    std::vector<int> log;
    Task<void> t = suspender(gate, log);
    t.start();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_FALSE(t.done());
    gate.parked.resume();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    gate.parked.resume();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Task, ValueResult)
{
    Task<int> t = makeFortyTwo();
    t.start();
    ASSERT_TRUE(t.done());
    EXPECT_EQ(t.result(), 42);
}

TEST(Task, ExceptionPropagatesToOwner)
{
    Task<void> t = thrower();
    t.start();
    ASSERT_TRUE(t.done());
    EXPECT_THROW(t.rethrowIfFailed(), std::runtime_error);
}

TEST(Task, MoveTransfersOwnership)
{
    Task<int> a = makeFortyTwo();
    Task<int> b = std::move(a);
    EXPECT_FALSE(a.valid());
    ASSERT_TRUE(b.valid());
    b.start();
    EXPECT_EQ(b.result(), 42);
}
