/**
 * @file
 * Snooping machine-model tests: the full protocol family must run the
 * sharing-pattern microworkloads to verified completion under audit,
 * the invalidate/update families must be measurably different on the
 * bus (MESI invalidates where Dragon updates in place), bus runs must
 * be deterministic, and a bus machine must leave no trace in later
 * directory machines built in the same process.
 */

#include <gtest/gtest.h>

#include <utility>

#include "apps/registry.hh"
#include "audit/auditor.hh"
#include "machine/mem_api.hh"
#include "machine/snoop.hh"

using namespace swex;

namespace
{

constexpr SnoopProtocol kProtocols[] = {
    SnoopProtocol::Mesi, SnoopProtocol::Moesi,
    SnoopProtocol::Mesif, SnoopProtocol::Dragon};

MachineConfig
snoopConfig(SnoopProtocol p, int nodes,
            BusArbitration arb = BusArbitration::Fifo)
{
    MachineConfig mc;
    mc.numNodes = nodes;
    mc.machineModel = MachineModel::Snoop;
    mc.snoopProtocol = p;
    mc.bus.arbitration = arb;
    return mc;
}

/** Run @p app_name on a bus machine; returns (cycles, imageHash). */
std::pair<Tick, std::uint64_t>
snoopRun(const char *app_name, SnoopProtocol p, int nodes)
{
    auto app = AppRegistry::instance().make(
        app_name, {{"iterations", "4"}}, nodes);
    Machine m(snoopConfig(p, nodes));
    Tick cycles = app->runParallel(m);
    EXPECT_TRUE(app->verify(m)) << app_name;
    m.checkInvariants();
    return {cycles, m.imageHash()};
}

} // anonymous namespace

// ------------------------------------------------------------------
// Smoke: every protocol x every microworkload, auditor attached.
// ------------------------------------------------------------------

TEST(SnoopSmoke, AllProtocolsRunAllMicroworkloadsUnderAudit)
{
    for (SnoopProtocol p : kProtocols) {
        for (const char *app_name : {"falseshare", "padded",
                                     "hotline"}) {
            SCOPED_TRACE(std::string(snoopProtocolName(p)) + "/" +
                         app_name);
            auto app = AppRegistry::instance().make(
                app_name, {{"iterations", "4"}}, 4);
            Machine m(snoopConfig(p, 4));
            CoherenceAuditor auditor(CoherenceAuditor::Mode::Collect);
            m.attachAuditor(&auditor);

            Tick cycles = app->runParallel(m);
            EXPECT_GT(cycles, 0u);
            EXPECT_TRUE(app->verify(m));
            m.checkInvariants();
            EXPECT_GT(auditor.transitionsChecked(), 0u);
            EXPECT_EQ(auditor.violationCount(), 0u);
            m.attachAuditor(nullptr);
        }
    }
}

TEST(SnoopSmoke, BothArbitrationDisciplinesComplete)
{
    for (BusArbitration arb : {BusArbitration::Fifo,
                               BusArbitration::RoundRobin}) {
        SCOPED_TRACE(busArbitrationName(arb));
        auto app = AppRegistry::instance().make(
            "falseshare", {{"iterations", "4"}}, 4);
        Machine m(snoopConfig(SnoopProtocol::Mesi, 4, arb));
        EXPECT_GT(app->runParallel(m), 0u);
        EXPECT_TRUE(app->verify(m));
        m.checkInvariants();
    }
}

// ------------------------------------------------------------------
// Protocol differentiation: the invalidate family ping-pongs the
// falsely-shared blocks while Dragon updates peers word by word.
// ------------------------------------------------------------------

TEST(SnoopDifferentiation, MesiInvalidatesWhereDragonUpdates)
{
    auto bus_stats = [](SnoopProtocol p, const char *app_name) {
        auto app = AppRegistry::instance().make(
            app_name, {{"iterations", "4"}}, 4);
        Machine m(snoopConfig(p, 4));
        EXPECT_GT(app->runParallel(m), 0u);
        EXPECT_TRUE(app->verify(m));
        auto *bus = dynamic_cast<SnoopBackend *>(m.backend.get());
        EXPECT_NE(bus, nullptr);
        struct { double inval, upd, word_upd, rdx; } s = {
            bus->invalidations.value(), bus->updates.value(),
            bus->wordUpdates.value(), bus->readExcl.value()};
        return s;
    };

    auto mesi = bus_stats(SnoopProtocol::Mesi, "falseshare");
    EXPECT_GT(mesi.inval, 0.0);
    EXPECT_GT(mesi.rdx, 0.0);
    EXPECT_EQ(mesi.upd, 0.0);
    EXPECT_EQ(mesi.word_upd, 0.0);

    auto dragon = bus_stats(SnoopProtocol::Dragon, "falseshare");
    EXPECT_GT(dragon.upd, 0.0);
    EXPECT_GT(dragon.word_upd, 0.0);
    EXPECT_EQ(dragon.inval, 0.0);

    // The padded control shares nothing: neither family pays a
    // coherence price for the counters.
    auto padded = bus_stats(SnoopProtocol::Mesi, "padded");
    EXPECT_EQ(padded.inval, 0.0);
    auto padded_dragon = bus_stats(SnoopProtocol::Dragon, "padded");
    EXPECT_EQ(padded_dragon.word_upd, 0.0);
}

// ------------------------------------------------------------------
// Determinism and cross-model isolation.
// ------------------------------------------------------------------

TEST(SnoopDeterminism, SameConfigSameRun)
{
    auto a = snoopRun("falseshare", SnoopProtocol::Moesi, 4);
    auto b = snoopRun("falseshare", SnoopProtocol::Moesi, 4);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(SnoopIsolation, BusRunLeavesNoTraceInLaterDirectoryRuns)
{
    // A directory run, a bus run, then the directory run again: the
    // bus machine must not perturb the directory machine's timing or
    // final memory image through any process-global state.
    auto directory_run = [] {
        auto app = AppRegistry::instance().make(
            "worker", {{"wss", "4"}, {"iterations", "2"}}, 8);
        MachineConfig mc;
        mc.numNodes = 8;
        mc.protocol = ProtocolConfig::hw(5);
        Machine m(mc);
        Tick cycles = app->runParallel(m);
        EXPECT_TRUE(app->verify(m));
        m.checkInvariants();
        return std::pair<Tick, std::uint64_t>{cycles, m.imageHash()};
    };

    auto before = directory_run();
    snoopRun("falseshare", SnoopProtocol::Dragon, 4);
    snoopRun("hotline", SnoopProtocol::Mesi, 4);
    auto after = directory_run();
    EXPECT_EQ(before.first, after.first);
    EXPECT_EQ(before.second, after.second);
}
