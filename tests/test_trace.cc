/**
 * @file
 * Tests for the record/replay subsystem: the swex-trace-v1 container
 * round-trips, rejects truncated and corrupt files with structured
 * errors, invalidates stale keys; and replay reproduces bit-identical
 * cycle counts and memory images — for config-bound traces under the
 * recording config, and for portable traces under every protocol
 * cell.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "exp/runner.hh"
#include "trace/encoding.hh"
#include "trace/replay.hh"
#include "trace/trace_format.hh"

using namespace swex;

namespace
{

/** Fresh scratch directory under gtest's temp root. */
std::string
scratchDir(const std::string &tag)
{
    std::string tmpl = ::testing::TempDir() + "swextrace-" + tag +
                       "-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *d = mkdtemp(buf.data());
    EXPECT_NE(d, nullptr);
    return d != nullptr ? d : ".";
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::vector<std::uint8_t> raw;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        raw.insert(raw.end(), buf, buf + n);
    std::fclose(f);
    return raw;
}

void
spit(const std::string &path, const std::vector<std::uint8_t> &raw)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(raw.data(), 1, raw.size(), f), raw.size());
    std::fclose(f);
}

/** A small synthetic trace with two op streams. */
trace::Trace
sampleTrace()
{
    TraceRecorder rec(2);
    rec.setFootprint(0, 0, {0x1000, 0x1040, 0x1080});
    rec.work(0, 0, 250);
    rec.memOp(0, 250, trace::Op::Load, 0x40000, 0);
    rec.memOp(0, 253, trace::Op::Store, 0x40008, 7);
    rec.memOp(0, 260, trace::Op::FetchAdd, 0x40010, 1);
    rec.memOp(0, 270, trace::Op::Swap, 0x40018, 99);
    rec.hwBarrier(0, 281);
    rec.work(1, 0, 1);
    rec.hwBarrier(1, 1);

    trace::Trace t;
    t.meta.portable = true;
    t.meta.appNodes = 2;
    t.meta.numThreads = 2;
    t.meta.configFingerprint = 0xfeedULL;
    t.meta.recordedCycles = 4242;
    t.meta.recordedImageHash = 0xabcdULL;
    t.meta.seed = 12345;
    t.meta.app = "worker";
    t.meta.params = "iterations=2;wss=2";
    t.meta.protocol = "HW5";
    t.streams = {rec.stream(0), rec.stream(1)};
    return t;
}

ExperimentSpec
workerSpec(const std::string &id, ProtocolConfig proto,
           ExecutionMode mode, const std::string &dir)
{
    ExperimentSpec s{.id = id,
                     .app = "worker",
                     .params = {{"wss", "3"}, {"iterations", "3"}},
                     .protocol = proto,
                     .nodes = 8,
                     .victimEntries = 6};
    s.execMode = mode;
    s.traceDir = dir;
    return s;
}

} // anonymous namespace

TEST(TraceEncoding, VarintRoundTrips)
{
    std::vector<std::uint8_t> buf;
    const std::uint64_t values[] = {0, 1, 127, 128, 300, 1ull << 31,
                                    ~0ull};
    for (std::uint64_t v : values)
        trace::putVarint(buf, v);
    const std::uint8_t *cur = buf.data();
    const std::uint8_t *end = buf.data() + buf.size();
    for (std::uint64_t v : values) {
        std::uint64_t got = 0;
        ASSERT_TRUE(trace::getVarint(cur, end, got));
        EXPECT_EQ(got, v);
    }
    EXPECT_EQ(cur, end);

    // Truncation mid-varint decodes to failure, not garbage.
    std::vector<std::uint8_t> cut;
    trace::putVarint(cut, 1ull << 40);
    cut.pop_back();
    cur = cut.data();
    end = cut.data() + cut.size();
    std::uint64_t got = 0;
    EXPECT_FALSE(trace::getVarint(cur, end, got));
}

TEST(TraceFormat, SaveLoadRoundTrips)
{
    std::string dir = scratchDir("roundtrip");
    std::string path = dir + "/t.swextrace";
    trace::Trace t = sampleTrace();
    std::string err;
    ASSERT_TRUE(t.save(path, err)) << err;

    trace::Trace back;
    ASSERT_TRUE(trace::Trace::load(path, back, err)) << err;
    EXPECT_EQ(back.meta.version, trace::traceVersion);
    EXPECT_EQ(back.meta.schema, trace::traceSchema);
    EXPECT_TRUE(back.meta.portable);
    EXPECT_FALSE(back.meta.sequential);
    EXPECT_EQ(back.meta.appNodes, 2u);
    EXPECT_EQ(back.meta.numThreads, 2u);
    EXPECT_EQ(back.meta.configFingerprint, 0xfeedULL);
    EXPECT_EQ(back.meta.recordedCycles, 4242u);
    EXPECT_EQ(back.meta.recordedImageHash, 0xabcdULL);
    EXPECT_EQ(back.meta.app, "worker");
    EXPECT_EQ(back.meta.params, "iterations=2;wss=2");
    EXPECT_EQ(back.meta.protocol, "HW5");
    ASSERT_EQ(back.streams.size(), 2u);
    EXPECT_EQ(back.streams[0].bytes, t.streams[0].bytes);
    EXPECT_EQ(back.streams[0].ops, t.streams[0].ops);
    EXPECT_EQ(back.streams[1].bytes, t.streams[1].bytes);
}

// Regression for the torn-write bug: Trace::save used a fixed
// "<path>.tmp" staging name, so two writers racing the same trace
// path could interleave their writes in one temp file and rename a
// torn hybrid into place. With unique per-writer temp names the file
// at the path is always some writer's complete save — every racing
// round must leave a trace that loads with passing checksums.
TEST(TraceFormat, ConcurrentSameKeySavesLeaveALoadableFile)
{
    std::string dir = scratchDir("saverace");
    std::string path = dir + "/t.swextrace";
    constexpr int writers = 8;
    constexpr int rounds = 20;

    std::vector<std::thread> threads;
    threads.reserve(writers);
    for (int t = 0; t < writers; ++t) {
        threads.emplace_back([&, t] {
            trace::Trace mine = sampleTrace();
            // Distinct per-writer sizes, so a torn interleaving of
            // two writers cannot masquerade as either one.
            mine.meta.seed = 1000 + t;
            mine.meta.params += ";pad=" + std::string(64 * (t + 1),
                                                      'p');
            for (int i = 0; i < rounds; ++i) {
                std::string err;
                ASSERT_TRUE(mine.save(path, err)) << err;
                trace::Trace back;
                ASSERT_TRUE(trace::Trace::load(path, back, err))
                    << err;
            }
        });
    }
    for (auto &th : threads)
        th.join();

    trace::Trace back;
    std::string err;
    ASSERT_TRUE(trace::Trace::load(path, back, err)) << err;
    const auto t = back.meta.seed - 1000;
    ASSERT_LT(t, static_cast<std::uint64_t>(writers));
    EXPECT_NE(back.meta.params.find(std::string(64 * (t + 1), 'p')),
              std::string::npos);
}

TEST(TraceFormat, MissingFileIsAStructuredError)
{
    trace::Trace out;
    std::string err;
    EXPECT_FALSE(trace::Trace::load("/nonexistent/t.swextrace", out,
                                    err));
    EXPECT_NE(err.find("no trace file"), std::string::npos) << err;
}

TEST(TraceFormat, BadMagicIsRejected)
{
    std::string dir = scratchDir("magic");
    std::string path = dir + "/t.swextrace";
    trace::Trace t = sampleTrace();
    std::string err;
    ASSERT_TRUE(t.save(path, err)) << err;

    auto raw = slurp(path);
    raw[0] ^= 0xff;
    spit(path, raw);
    trace::Trace out;
    EXPECT_FALSE(trace::Trace::load(path, out, err));
    EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
}

TEST(TraceFormat, EveryTruncationIsRejectedWithoutCrashing)
{
    std::string dir = scratchDir("trunc");
    std::string full = dir + "/full.swextrace";
    trace::Trace t = sampleTrace();
    std::string err;
    ASSERT_TRUE(t.save(full, err)) << err;
    auto raw = slurp(full);

    std::string path = dir + "/cut.swextrace";
    for (std::size_t len = 0; len < raw.size(); len += 7) {
        spit(path, {raw.begin(), raw.begin() +
                                     static_cast<std::ptrdiff_t>(len)});
        trace::Trace out;
        err.clear();
        EXPECT_FALSE(trace::Trace::load(path, out, err)) << len;
        EXPECT_FALSE(err.empty()) << len;
    }
}

TEST(TraceFormat, CorruptHeaderAndPayloadFailChecksums)
{
    std::string dir = scratchDir("corrupt");
    std::string path = dir + "/t.swextrace";
    trace::Trace t = sampleTrace();
    std::string err;
    ASSERT_TRUE(t.save(path, err)) << err;
    auto raw = slurp(path);

    // Flip a byte inside the app-name characters (the string length
    // at 60 would misparse as truncation; content hits the checksum).
    auto header_bad = raw;
    header_bad[66] ^= 0x01;
    spit(path, header_bad);
    trace::Trace out;
    EXPECT_FALSE(trace::Trace::load(path, out, err));
    EXPECT_NE(err.find("header checksum"), std::string::npos) << err;

    // Flip a byte in the payload (last stream byte before the tail).
    auto payload_bad = raw;
    payload_bad[raw.size() - 9] ^= 0x01;
    spit(path, payload_bad);
    EXPECT_FALSE(trace::Trace::load(path, out, err));
    EXPECT_NE(err.find("payload checksum"), std::string::npos) << err;
}

TEST(TraceFormat, StaleSchemaAsksForReRecord)
{
    std::string dir = scratchDir("schema");
    std::string path = dir + "/t.swextrace";
    trace::Trace t = sampleTrace();
    std::string err;
    ASSERT_TRUE(t.save(path, err)) << err;

    // Bytes 12..15 hold the little-endian schema; version/schema are
    // checked before the header checksum so old traces always get the
    // re-record message, not a corruption report.
    auto raw = slurp(path);
    raw[12] = 0xee;
    spit(path, raw);
    trace::Trace out;
    EXPECT_FALSE(trace::Trace::load(path, out, err));
    EXPECT_NE(err.find("re-record"), std::string::npos) << err;
}

TEST(TraceFormat, KeyMismatchNamesTheStaleComponent)
{
    trace::Trace t = sampleTrace();
    EXPECT_EQ(t.keyMismatch("worker", "iterations=2;wss=2", 2, false),
              "");
    EXPECT_NE(t.keyMismatch("tsp", "iterations=2;wss=2", 2, false)
                  .find("app"),
              std::string::npos);
    EXPECT_NE(t.keyMismatch("worker", "iterations=9;wss=2", 2, false)
                  .find("params"),
              std::string::npos);
    EXPECT_NE(t.keyMismatch("worker", "iterations=2;wss=2", 4, false)
                  .find("nodes"),
              std::string::npos);
    EXPECT_NE(t.keyMismatch("worker", "iterations=2;wss=2", 2, true)
                  .find("sequential"),
              std::string::npos);
}

TEST(TraceFormat, FileNamesSeparateConfigCells)
{
    // Config-bound traces from different machine configs must not
    // collide in the cache directory; portable traces share one file.
    std::string a = trace::traceFileName("aq", "p=1", 16, false,
                                         false, 0x1111);
    std::string b = trace::traceFileName("aq", "p=1", 16, false,
                                         false, 0x2222);
    std::string p = trace::traceFileName("worker", "p=1", 16, false,
                                         true, 0x1111);
    std::string q = trace::traceFileName("worker", "p=1", 16, false,
                                         true, 0x2222);
    EXPECT_NE(a, b);
    EXPECT_EQ(p, q);
}

TEST(TraceReplay, PortableRecordReplaysBitIdenticalAcrossProtocols)
{
    std::string dir = scratchDir("portable");
    Runner runner;

    // Record once under HW5.
    RunRecord rec = runner.execute(workerSpec(
        "rec", ProtocolConfig::hw(5), ExecutionMode::Record, dir));
    ASSERT_EQ(rec.status, "ok");
    ASSERT_TRUE(rec.verified);

    // Replay under the recording cell and under different protocol
    // cells; each must match its own direct run bit for bit.
    for (ProtocolConfig proto :
         {ProtocolConfig::hw(5), ProtocolConfig::h0(),
          ProtocolConfig::h1Ack(), ProtocolConfig::fullMap()}) {
        RunRecord direct = runner.execute(workerSpec(
            "dir", proto, ExecutionMode::Direct, dir));
        RunRecord replay = runner.execute(workerSpec(
            "rep", proto, ExecutionMode::Replay, dir));
        ASSERT_EQ(replay.status, "ok") << proto.name();
        EXPECT_TRUE(replay.verified) << proto.name();
        EXPECT_EQ(replay.simCycles, direct.simCycles) << proto.name();
        EXPECT_EQ(replay.imageHash, direct.imageHash) << proto.name();
        EXPECT_EQ(replay.trapsRaised, direct.trapsRaised)
            << proto.name();
        EXPECT_EQ(replay.messages, direct.messages) << proto.name();
    }
}

TEST(TraceReplay, EvolveIsTracePortableAcrossProtocols)
{
    // EVOLVE qualified for portability by replacing its best-fitness
    // lock with per-thread slots and a thread-0 reduction: its walks
    // branch only on the fitness table, written once in setup. A
    // trace recorded under HW5 must replay bit-identically under
    // other protocol cells.
    ASSERT_TRUE(AppRegistry::instance().entry("evolve").tracePortable);
    std::string dir = scratchDir("evolve");
    Runner runner;
    ExperimentSpec spec{
        .id = "evolve",
        .app = "evolve",
        .params = {{"dims", "5"}, {"walks", "1"}},
        .protocol = ProtocolConfig::hw(5),
        .nodes = 8,
        .victimEntries = 6};
    spec.execMode = ExecutionMode::Record;
    spec.traceDir = dir;
    RunRecord rec = runner.execute(spec);
    ASSERT_EQ(rec.status, "ok");
    ASSERT_TRUE(rec.verified);

    for (ProtocolConfig proto :
         {ProtocolConfig::h0(), ProtocolConfig::h1Ack(),
          ProtocolConfig::fullMap()}) {
        spec.protocol = proto;
        spec.execMode = ExecutionMode::Direct;
        RunRecord direct = runner.execute(spec);
        spec.execMode = ExecutionMode::Replay;
        RunRecord replay = runner.execute(spec);
        ASSERT_EQ(replay.status, "ok") << proto.name();
        EXPECT_TRUE(replay.verified) << proto.name();
        EXPECT_EQ(replay.simCycles, direct.simCycles) << proto.name();
        EXPECT_EQ(replay.imageHash, direct.imageHash) << proto.name();
    }
}

TEST(TraceReplay, SmgridIsTracePortableAcrossProtocols)
{
    // SMGRID's unified kernel (static partition, hardware barriers,
    // residual slots reduced by thread 0) makes every reference a
    // pure function of (params, nodes, tid).
    ASSERT_TRUE(AppRegistry::instance().entry("smgrid").tracePortable);
    std::string dir = scratchDir("smgrid");
    Runner runner;
    ExperimentSpec spec{
        .id = "smgrid",
        .app = "smgrid",
        .params = {{"fine", "9"}, {"levels", "2"}},
        .protocol = ProtocolConfig::hw(5),
        .nodes = 4,
        .victimEntries = 6};
    spec.execMode = ExecutionMode::Record;
    spec.traceDir = dir;
    RunRecord rec = runner.execute(spec);
    ASSERT_EQ(rec.status, "ok");
    ASSERT_TRUE(rec.verified);

    for (ProtocolConfig proto :
         {ProtocolConfig::h0(), ProtocolConfig::h1Lack(),
          ProtocolConfig::fullMap()}) {
        spec.protocol = proto;
        spec.execMode = ExecutionMode::Direct;
        RunRecord direct = runner.execute(spec);
        spec.execMode = ExecutionMode::Replay;
        RunRecord replay = runner.execute(spec);
        ASSERT_EQ(replay.status, "ok") << proto.name();
        EXPECT_TRUE(replay.verified) << proto.name();
        EXPECT_EQ(replay.simCycles, direct.simCycles) << proto.name();
        EXPECT_EQ(replay.imageHash, direct.imageHash) << proto.name();
    }
}

TEST(TraceReplay, SequentialBaselineReplaysBitIdentical)
{
    std::string dir = scratchDir("seq");
    Runner runner;
    ExperimentSpec spec = workerSpec("seq", ProtocolConfig::hw(5),
                                     ExecutionMode::Record, dir);
    spec.sequential = true;
    RunRecord rec = runner.execute(spec);
    ASSERT_EQ(rec.status, "ok");

    spec.execMode = ExecutionMode::Replay;
    RunRecord replay = runner.execute(spec);
    EXPECT_EQ(replay.status, "ok");
    EXPECT_TRUE(replay.verified);
    EXPECT_EQ(replay.simCycles, rec.simCycles);
    EXPECT_EQ(replay.imageHash, rec.imageHash);
}

TEST(TraceReplay, ConfigBoundAppReplaysUnderTheRecordingConfig)
{
    // aq's work-queue op stream is timing-dependent (not portable),
    // but an exact-config replay is still bit-identical.
    std::string dir = scratchDir("aq");
    Runner runner;
    ExperimentSpec spec{
        .id = "aq",
        .app = "aq",
        .params = AppRegistry::instance().entry("aq").smokeParams,
        .protocol = ProtocolConfig::hw(5),
        .nodes = 4,
        .victimEntries = 6};
    spec.execMode = ExecutionMode::Record;
    spec.traceDir = dir;
    RunRecord rec = runner.execute(spec);
    ASSERT_EQ(rec.status, "ok");
    ASSERT_TRUE(rec.verified);

    spec.execMode = ExecutionMode::Replay;
    RunRecord replay = runner.execute(spec);
    EXPECT_EQ(replay.status, "ok");
    EXPECT_TRUE(replay.verified);
    EXPECT_EQ(replay.simCycles, rec.simCycles);
    EXPECT_EQ(replay.imageHash, rec.imageHash);
}

TEST(TraceReplay, NonPortableAppRefusesCrossConfigReplay)
{
    std::string dir = scratchDir("refuse");
    Runner runner;
    ExperimentSpec spec{
        .id = "aq",
        .app = "aq",
        .params = AppRegistry::instance().entry("aq").smokeParams,
        .protocol = ProtocolConfig::hw(5),
        .nodes = 4,
        .victimEntries = 6};
    spec.execMode = ExecutionMode::Record;
    spec.traceDir = dir;
    RunRecord rec = runner.execute(spec);
    ASSERT_EQ(rec.status, "ok");

    // A different protocol cell: the config-bound trace must not be
    // found, and the error must say why a portable one cannot exist.
    spec.protocol = ProtocolConfig::h0();
    trace::Trace out;
    std::string err = Runner::findReplayTrace(spec, out);
    ASSERT_FALSE(err.empty());
    EXPECT_NE(err.find("not trace-portable"), std::string::npos)
        << err;
}

TEST(TraceReplay, MissingTraceIsAStructuredError)
{
    std::string dir = scratchDir("missing");
    ExperimentSpec spec = workerSpec("x", ProtocolConfig::hw(5),
                                     ExecutionMode::Replay, dir);
    trace::Trace out;
    std::string err = Runner::findReplayTrace(spec, out);
    ASSERT_FALSE(err.empty());
    EXPECT_NE(err.find("no trace file"), std::string::npos) << err;

    // And with no trace directory at all, the error says how to fix
    // it instead of pointing at a path.
    spec.traceDir.clear();
    unsetenv("SWEX_TRACE_CACHE");
    err = Runner::findReplayTrace(spec, out);
    EXPECT_NE(err.find("no trace directory"), std::string::npos)
        << err;
}

TEST(TraceReplay, RunAllReplayMatchesDirectSweep)
{
    std::string dir = scratchDir("sweep");
    std::vector<ExperimentSpec> specs;
    for (int ptrs : {1, 2, 5}) {
        specs.push_back(workerSpec("cell/h" + std::to_string(ptrs),
                                   ProtocolConfig::hw(ptrs),
                                   ExecutionMode::Direct, ""));
    }
    ExperimentSpec seq = workerSpec("cell/seq", ProtocolConfig::hw(5),
                                    ExecutionMode::Direct, "");
    seq.sequential = true;
    specs.push_back(seq);

    Runner direct;
    auto want = direct.runAll(specs, 2);
    Runner fast;
    auto got = fast.runAllReplay(specs, 2, dir);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i]->simCycles, want[i]->simCycles)
            << specs[i].id;
        EXPECT_EQ(got[i]->imageHash, want[i]->imageHash)
            << specs[i].id;
        EXPECT_TRUE(got[i]->verified) << specs[i].id;
    }
    // One cell recorded, the rest replayed.
    int replays = 0;
    for (const RunRecord *r : got)
        replays += r->execMode == "replay";
    EXPECT_EQ(replays, 2);
    EXPECT_EQ(got[0]->execMode, "record");
}

TEST(TraceFastForward, ExactConfigFastForwardIsBitIdentical)
{
    std::string dir = scratchDir("fast");
    Runner runner;
    RunRecord direct = runner.execute(workerSpec(
        "dir", ProtocolConfig::hw(5), ExecutionMode::Direct, dir));
    RunRecord rec = runner.execute(workerSpec(
        "rec", ProtocolConfig::hw(5), ExecutionMode::Record, dir));
    ASSERT_EQ(rec.status, "ok");

    ExperimentSpec spec = workerSpec("fast", ProtocolConfig::hw(5),
                                     ExecutionMode::Replay, dir);
    spec.fastReplay = true;
    RunRecord ff = runner.execute(spec);
    EXPECT_EQ(ff.execMode, "replay-fast");
    EXPECT_EQ(ff.status, "ok");
    EXPECT_TRUE(ff.verified);
    EXPECT_EQ(ff.simCycles, direct.simCycles);
    EXPECT_EQ(ff.imageHash, direct.imageHash);
}

TEST(TraceFastForward, CrossConfigReplayFallsBackThenUpgrades)
{
    // fastReplay over a portable trace from a different config must
    // fall back to event-driven replay (the gap annotations are the
    // recording config's timing) — and that replay re-records, so
    // the second replay of the same cell fast-forwards.
    std::string dir = scratchDir("upgrade");
    Runner runner;
    RunRecord rec = runner.execute(workerSpec(
        "rec", ProtocolConfig::hw(5), ExecutionMode::Record, dir));
    ASSERT_EQ(rec.status, "ok");

    ExperimentSpec spec = workerSpec("h0", ProtocolConfig::h0(),
                                     ExecutionMode::Replay, dir);
    spec.fastReplay = true;
    RunRecord full = runner.execute(spec);
    EXPECT_EQ(full.execMode, "replay");
    EXPECT_TRUE(full.verified);

    RunRecord ff = runner.execute(spec);
    EXPECT_EQ(ff.execMode, "replay-fast");
    EXPECT_TRUE(ff.verified);
    EXPECT_EQ(ff.simCycles, full.simCycles);
    EXPECT_EQ(ff.imageHash, full.imageHash);
}

TEST(TraceFastForward, SecondSweepFastForwardsEveryCell)
{
    std::string dir = scratchDir("warm");
    std::vector<ExperimentSpec> specs;
    for (int ptrs : {1, 2, 5}) {
        specs.push_back(workerSpec("cell/h" + std::to_string(ptrs),
                                   ProtocolConfig::hw(ptrs),
                                   ExecutionMode::Direct, ""));
    }
    ExperimentSpec seq = workerSpec("cell/seq", ProtocolConfig::hw(5),
                                    ExecutionMode::Direct, "");
    seq.sequential = true;
    specs.push_back(seq);

    Runner cold;
    auto want = cold.runAllReplay(specs, 2, dir);
    Runner warm;
    auto got = warm.runAllReplay(specs, 2, dir);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i]->execMode, "replay-fast") << specs[i].id;
        EXPECT_TRUE(got[i]->verified) << specs[i].id;
        EXPECT_EQ(got[i]->simCycles, want[i]->simCycles)
            << specs[i].id;
        EXPECT_EQ(got[i]->imageHash, want[i]->imageHash)
            << specs[i].id;
    }
}
