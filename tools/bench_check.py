#!/usr/bin/env python3
"""Smoke-check the bench trajectory machinery.

Runs micro_substrates with a tiny measurement budget, pointing
SWEX_BENCH_JSON at a scratch file, then validates the emitted JSON:
it must parse, carry the expected schema tag, provide the required
entries, and every metric must be a finite number. Exits non-zero on
any malformed or missing output, so CI catches a broken reporting
layer before anyone trusts a checked-in trajectory.
"""

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile

REQUIRED_ENTRIES = [
    "BM_EventQueueScheduleRun",
    "BM_EventQueueWarm",
    "BM_EventQueueIntrusive",
    "BM_EventQueueFarFuture",
    "BM_EventQueueMixedDelays",
    "BM_MessagePoolSendRecv",
    "micro_substrates",
]


def run_bench(binary, json_path):
    """Run the bench binary; old google-benchmark releases only accept
    a bare double for --benchmark_min_time, newer ones want a suffixed
    form, so try the suffixed spelling first and fall back."""
    env = dict(os.environ, SWEX_BENCH_JSON=json_path)
    for min_time in ("0.05x", "0.05"):
        try:
            proc = subprocess.run(
                [binary, f"--benchmark_min_time={min_time}"],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
        except OSError as e:
            sys.exit(f"FAIL: cannot run {binary}: {e}")
        if proc.returncode == 0:
            return proc.stdout
    sys.exit(f"FAIL: {binary} exited with {proc.returncode}:\n"
             f"{proc.stdout}")


def check_json(json_path):
    if not os.path.exists(json_path):
        sys.exit(f"FAIL: bench run produced no {json_path}")
    with open(json_path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            sys.exit(f"FAIL: {json_path} is not valid JSON: {e}")

    if doc.get("schema") != "swex-bench-v1":
        sys.exit(f"FAIL: unexpected schema tag {doc.get('schema')!r}")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        sys.exit("FAIL: 'entries' missing or empty")

    by_name = {}
    for e in entries:
        if not isinstance(e.get("name"), str) or \
                not isinstance(e.get("metrics"), dict):
            sys.exit(f"FAIL: malformed entry {e!r}")
        for k, v in e["metrics"].items():
            if not isinstance(v, (int, float)) or \
                    not math.isfinite(v):
                sys.exit(f"FAIL: {e['name']}: metric {k!r} is not a "
                         f"finite number: {v!r}")
        by_name[e["name"]] = e["metrics"]

    missing = [n for n in REQUIRED_ENTRIES if n not in by_name]
    if missing:
        sys.exit(f"FAIL: required entries missing: {missing}")

    for name, metrics in by_name.items():
        if name.startswith("BM_") and \
                metrics.get("ns_per_op", 0) <= 0:
            sys.exit(f"FAIL: {name}: ns_per_op not positive")
    return len(entries)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("binary", help="path to the micro_substrates binary")
    args = ap.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        json_path = os.path.join(tmp, "bench.json")
        run_bench(args.binary, json_path)
        # A second run must merge, not mangle, the existing file.
        run_bench(args.binary, json_path)
        n = check_json(json_path)
    print(f"OK: {n} entries validated")


if __name__ == "__main__":
    main()
