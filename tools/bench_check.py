#!/usr/bin/env python3
"""Smoke-check the machine-readable output machinery.

Default mode runs micro_substrates with a tiny measurement budget,
pointing SWEX_BENCH_JSON at a scratch file, then validates the emitted
swex-bench-v1 trajectory: it must parse, carry the expected schema
tag, provide the required entries, and every metric must be a finite
number.

With --cli the positional binary is swex_cli; the script runs a tiny
experiment with --json and validates the emitted swex-run-v1 document
(schema tag, per-record required fields, finite metrics), checks
that $SWEX_RUN_JSON produces the same document shape, and runs one
snooping-bus experiment to validate the optional machine_model field
(directory records omit it; bus records must carry "snoop").

With --replay-equiv the positional binary is swex_cli; the script
records a run into a scratch trace directory, validates every emitted
swex-trace-v1 file (magic, version, schema, header and payload FNV-1a
checksums, stream table consistency), then replays — under the
recording config and under a different protocol via the portable
trace — and requires bit-identical sim_cycles and image_hash against
direct execution.

With --cache-equiv the positional binary is swex_cli; the script runs
the same experiment direct, cold-cache, and warm-cache and requires
the canonical swex-run-v1 documents to be byte-identical, checks that
a $SWEX_CACHE_EPOCH bump invalidates (and transparently recomputes)
the entry, then starts `swex_cli --serve` on a scratch Unix socket
and requires the served record to equal the direct run's, with the
stats op accounting the hit and surfacing the eviction counter. The
serve session is also exercised as a real server: a server-side sweep
must stream every cell byte-identical to direct runs of the same
cells, and three simultaneous client connections must each get the
direct run's bytes back.

All validators reject unknown schema versions outright. Exits
non-zero on any malformed or missing output, so CI catches a broken
reporting layer before anyone trusts a checked-in artifact.
"""

import argparse
import json
import math
import os
import struct
import subprocess
import sys
import tempfile

REQUIRED_ENTRIES = [
    "BM_EventQueueScheduleRun",
    "BM_EventQueueWarm",
    "BM_EventQueueIntrusive",
    "BM_EventQueueFarFuture",
    "BM_EventQueueMixedDelays",
    "BM_MessagePoolSendRecv",
    "micro_substrates",
]

RECORD_REQUIRED = ["id", "app", "protocol", "nodes", "sequential",
                   "sim_cycles", "verified", "metrics", "host"]


def load_doc(json_path, expect_schema):
    if not os.path.exists(json_path):
        sys.exit(f"FAIL: run produced no {json_path}")
    with open(json_path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            sys.exit(f"FAIL: {json_path} is not valid JSON: {e}")
    schema = doc.get("schema")
    if schema != expect_schema:
        sys.exit(f"FAIL: unknown schema tag {schema!r} "
                 f"(expected {expect_schema!r})")
    return doc


def check_finite_numbers(path, obj):
    """Every numeric leaf under obj must be finite."""
    if isinstance(obj, dict):
        for k, v in obj.items():
            check_finite_numbers(f"{path}.{k}", v)
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            check_finite_numbers(f"{path}[{i}]", v)
    elif isinstance(obj, float) and not math.isfinite(obj):
        sys.exit(f"FAIL: {path} is not finite: {obj!r}")


def run_bench(binary, json_path):
    """Run the bench binary; old google-benchmark releases only accept
    a bare double for --benchmark_min_time, newer ones want a suffixed
    form, so try the suffixed spelling first and fall back."""
    env = dict(os.environ, SWEX_BENCH_JSON=json_path)
    for min_time in ("0.05x", "0.05"):
        try:
            proc = subprocess.run(
                [binary, f"--benchmark_min_time={min_time}"],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
        except OSError as e:
            sys.exit(f"FAIL: cannot run {binary}: {e}")
        if proc.returncode == 0:
            return proc.stdout
    sys.exit(f"FAIL: {binary} exited with {proc.returncode}:\n"
             f"{proc.stdout}")


def check_bench_json(json_path):
    doc = load_doc(json_path, "swex-bench-v1")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        sys.exit("FAIL: 'entries' missing or empty")

    by_name = {}
    for e in entries:
        if not isinstance(e.get("name"), str) or \
                not isinstance(e.get("metrics"), dict):
            sys.exit(f"FAIL: malformed entry {e!r}")
        for k, v in e["metrics"].items():
            if not isinstance(v, (int, float)) or \
                    not math.isfinite(v):
                sys.exit(f"FAIL: {e['name']}: metric {k!r} is not a "
                         f"finite number: {v!r}")
        by_name[e["name"]] = e["metrics"]

    missing = [n for n in REQUIRED_ENTRIES if n not in by_name]
    if missing:
        sys.exit(f"FAIL: required entries missing: {missing}")

    for name, metrics in by_name.items():
        if name.startswith("BM_") and \
                metrics.get("ns_per_op", 0) <= 0:
            sys.exit(f"FAIL: {name}: ns_per_op not positive")
    return len(entries)


def check_run_json(json_path, expect_records):
    doc = load_doc(json_path, "swex-run-v1")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        sys.exit("FAIL: 'records' missing or empty")
    if len(records) != expect_records:
        sys.exit(f"FAIL: expected {expect_records} records, "
                 f"got {len(records)}")
    for r in records:
        missing = [k for k in RECORD_REQUIRED if k not in r]
        if missing:
            sys.exit(f"FAIL: record {r.get('id')!r} missing "
                     f"fields: {missing}")
        if not r["verified"]:
            sys.exit(f"FAIL: record {r.get('id')!r} not verified")
        if r["sim_cycles"] <= 0:
            sys.exit(f"FAIL: record {r.get('id')!r} has "
                     f"non-positive sim_cycles")
        if not isinstance(r.get("stats"), dict) or not r["stats"]:
            sys.exit(f"FAIL: record {r.get('id')!r} has no stats "
                     f"tree")
        # machine_model is optional: directory records omit it, and
        # the only other backend is the snooping bus.
        if "machine_model" in r and r["machine_model"] != "snoop":
            sys.exit(f"FAIL: record {r.get('id')!r} has unknown "
                     f"machine_model {r['machine_model']!r}")
        check_finite_numbers(r.get("id", "?"), r)
    seq = [r for r in records if r["sequential"]]
    if len(seq) != 1:
        sys.exit(f"FAIL: expected exactly 1 sequential record, "
                 f"got {len(seq)}")
    par = [r for r in records if not r["sequential"]]
    if not all(r.get("speedup", 0) > 0 for r in par):
        sys.exit("FAIL: parallel record missing positive speedup")
    return len(records)


# swex-trace-v1 container constants (src/trace/trace_format.cc).
TRACE_MAGIC = b"SWEXTRC1"
TRACE_VERSION = 1
TRACE_SCHEMA = 1
FNV_OFFSET = 1469598103934665603
FNV_PRIME = 1099511628211
MASK64 = (1 << 64) - 1


def fnv1a(h, data):
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def check_trace_file(path):
    """Validate one swex-trace-v1 file independently of the C++
    loader: header layout, stream table, and both checksums. Returns
    (app, nstreams, recorded_cycles)."""
    with open(path, "rb") as f:
        blob = f.read()

    def fail(why):
        sys.exit(f"FAIL: {path}: {why}")

    if blob[:8] != TRACE_MAGIC:
        fail(f"bad magic {blob[:8]!r}")
    if len(blob) < 68:
        fail("truncated header")
    version, schema, flags, nodes, nstreams = \
        struct.unpack_from("<5I", blob, 8)
    if version != TRACE_VERSION:
        fail(f"unknown trace version {version}")
    if schema != TRACE_SCHEMA:
        fail(f"unknown op schema {schema}")
    if not 1 <= nstreams <= 4096:
        fail(f"implausible stream count {nstreams}")
    off = 28
    _fp, cycles, _image, _seed = struct.unpack_from("<4Q", blob, off)
    off += 32
    strs = []
    for what in ("app", "params", "protocol"):
        if off + 4 > len(blob):
            fail(f"truncated {what} string")
        (n,) = struct.unpack_from("<I", blob, off)
        off += 4
        if off + n > len(blob):
            fail(f"truncated {what} string")
        strs.append(blob[off:off + n].decode("utf-8", "replace"))
        off += n
    stream_bytes = 0
    for i in range(nstreams):
        if off + 16 > len(blob):
            fail(f"truncated stream table at entry {i}")
        blen, ops = struct.unpack_from("<2Q", blob, off)
        off += 16
        if blen == 0 or ops == 0:
            fail(f"stream {i} is empty ({blen} bytes, {ops} ops)")
        stream_bytes += blen
    if off + 8 > len(blob):
        fail("missing header checksum")
    (header_fnv,) = struct.unpack_from("<Q", blob, off)
    if fnv1a(FNV_OFFSET, blob[:off]) != header_fnv:
        fail("header checksum mismatch")
    off += 8
    if len(blob) != off + stream_bytes + 8:
        fail(f"file size {len(blob)} does not match header + "
             f"{stream_bytes} payload bytes + checksum")
    (payload_fnv,) = struct.unpack_from("<Q", blob, off + stream_bytes)
    if fnv1a(FNV_OFFSET, blob[off:off + stream_bytes]) != payload_fnv:
        fail("payload checksum mismatch")
    if cycles == 0:
        fail("recorded cycle count is zero")
    return strs[0], nstreams, cycles


def cli_run(binary, args, json_path):
    proc = subprocess.run(
        [binary, *args, "--json", json_path],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        sys.exit(f"FAIL: {binary} {' '.join(args)} exited with "
                 f"{proc.returncode}:\n{proc.stdout}")
    doc = load_doc(json_path, "swex-run-v1")
    records = doc.get("records")
    if not isinstance(records, list) or len(records) != 1:
        sys.exit(f"FAIL: expected 1 record from {' '.join(args)}")
    return records[0]


def check_replay_equiv(binary, tmp):
    """Record, validate the trace container, replay, and require
    bit-identical results — both under the recording config and under
    a different protocol via the portable trace."""
    trace_dir = os.path.join(tmp, "traces")
    os.mkdir(trace_dir)
    spec = ["--app", "worker", "--nodes", "8", "--protocol", "h5",
            "--wss", "4", "--iters", "2"]
    recorded = cli_run(binary, spec + ["--record",
                                       "--trace-dir", trace_dir],
                       os.path.join(tmp, "record.json"))

    traces = sorted(f for f in os.listdir(trace_dir)
                    if f.endswith(".swextrace"))
    if not traces:
        sys.exit("FAIL: --record left no .swextrace file")
    for t in traces:
        app, nstreams, cycles = check_trace_file(
            os.path.join(trace_dir, t))
        print(f"OK: {t}: app={app} streams={nstreams} "
              f"cycles={cycles}")

    checks = 0
    # Exact-config replay vs the recording run itself.
    replayed = cli_run(binary, spec + ["--replay",
                                       "--trace-dir", trace_dir],
                       os.path.join(tmp, "replay.json"))
    pairs = [("recording config", recorded, replayed)]
    # Portable cross-protocol replay vs a direct run of that config.
    other = ["--app", "worker", "--nodes", "8", "--protocol",
             "h1ack", "--wss", "4", "--iters", "2"]
    pairs.append(("h1ack via portable trace",
                  cli_run(binary, other,
                          os.path.join(tmp, "direct2.json")),
                  cli_run(binary, other + ["--replay",
                                           "--trace-dir", trace_dir],
                          os.path.join(tmp, "replay2.json"))))
    for what, direct, replay in pairs:
        if replay.get("exec_mode") != "replay":
            sys.exit(f"FAIL: {what}: replay record not marked "
                     f"exec_mode=replay")
        for key in ("sim_cycles", "image_hash"):
            if direct.get(key) != replay.get(key):
                sys.exit(f"FAIL: {what}: {key} diverged: direct "
                         f"{direct.get(key)!r} vs replay "
                         f"{replay.get(key)!r}")
        if not replay.get("verified"):
            sys.exit(f"FAIL: {what}: replay record not verified")
        print(f"OK: {what}: sim_cycles={direct['sim_cycles']} "
              f"image_hash={direct['image_hash']} bit-identical")
        checks += 1
    return checks


def canonical_doc(binary, args, json_path, extra_env=None):
    """Run swex_cli with canonical $SWEX_RUN_JSON output and return
    the document bytes (the byte-identity currency of --cache-equiv)."""
    env = dict(os.environ, SWEX_RUN_JSON=json_path,
               SWEX_RUN_CANONICAL="1")
    if extra_env:
        env.update(extra_env)
    proc = subprocess.run(
        [binary, *args], env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        sys.exit(f"FAIL: {binary} {' '.join(args)} exited with "
                 f"{proc.returncode}:\n{proc.stdout}")
    with open(json_path, "rb") as f:
        return f.read()


def check_cache_equiv(binary, tmp):
    """Direct, cold-cache, and warm-cache runs must emit byte-identical
    canonical documents; the serve front end must hand back the same
    record over the socket."""
    import socket
    import time

    cache_dir = os.path.join(tmp, "cache")
    spec = ["--app", "worker", "--nodes", "8", "--protocol", "h5",
            "--wss", "4", "--iters", "2"]
    checks = 0

    direct = canonical_doc(binary, spec,
                           os.path.join(tmp, "direct.json"))
    cold = canonical_doc(binary, spec + ["--cache-dir", cache_dir],
                         os.path.join(tmp, "cold.json"))
    warm = canonical_doc(binary, spec + ["--cache-dir", cache_dir],
                         os.path.join(tmp, "warm.json"))
    if cold != direct:
        sys.exit("FAIL: cold-cache document differs from direct")
    if warm != direct:
        sys.exit("FAIL: warm-cache document differs from direct")
    entries = [f for f in os.listdir(cache_dir)
               if f.endswith(".swexrec")]
    if len(entries) != 1:
        sys.exit(f"FAIL: expected 1 cache entry, found {entries}")
    print(f"OK: direct/cold/warm canonical documents byte-identical "
          f"({len(direct)} bytes, entry {entries[0]})")
    checks += 3

    # Serve round-trip: the record streamed over the socket must equal
    # the record in the direct document, served from the cache.
    sock_path = os.path.join(tmp, "serve.sock")
    srv = subprocess.Popen(
        [binary, "--serve", sock_path, "--cache-dir", cache_dir,
         "--jobs", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        for _ in range(200):
            if os.path.exists(sock_path):
                break
            time.sleep(0.05)
        else:
            sys.exit("FAIL: --serve never created its socket")
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.connect(sock_path)
        f = conn.makefile("rw")

        def rpc(obj):
            f.write(json.dumps(obj) + "\n")
            f.flush()
            line = f.readline()
            if not line:
                sys.exit("FAIL: serve connection closed mid-request")
            return json.loads(line)

        # The direct run's spec, by name (id included: it is part of
        # the record and therefore of the cache key).
        resp = rpc({"op": "run", "id": "cli", "app": "worker",
                    "nodes": 8, "protocol": "h5",
                    "params": {"wss": "4", "iterations": "2"},
                    "tag": "equiv", "canonical": True})
        if not resp.get("ok"):
            sys.exit(f"FAIL: serve run failed: {resp.get('error')!r}")
        if resp.get("source") != "cache":
            sys.exit(f"FAIL: serve source {resp.get('source')!r}, "
                     f"expected 'cache'")
        direct_rec = json.loads(direct)["records"][0]
        if resp.get("record") != direct_rec:
            sys.exit("FAIL: served record differs from the direct "
                     "run's record")
        stats = rpc({"op": "stats"})
        if not stats.get("ok") or \
                stats.get("stats", {}).get("hits", 0) < 1:
            sys.exit(f"FAIL: serve stats did not account the hit: "
                     f"{stats!r}")
        if "evictions" not in stats.get("stats", {}):
            sys.exit(f"FAIL: serve stats missing the 'evictions' "
                     f"counter: {stats!r}")

        # A server-side sweep must stream every cell byte-identical to
        # the same cell requested directly: the h5 cell is the direct
        # run above, the h2 cell a fresh direct document.
        direct_h2 = canonical_doc(
            binary, ["--app", "worker", "--nodes", "8", "--protocol",
                     "h2", "--wss", "4", "--iters", "2"],
            os.path.join(tmp, "direct_h2.json"))
        f.write(json.dumps(
            {"op": "sweep", "id": "cli", "app": "worker", "nodes": 8,
             "params": {"wss": "4", "iterations": "2"}, "tag": "sw",
             "canonical": True,
             "grid": {"protocol": ["h5", "h2"]}}) + "\n")
        f.flush()
        cells = {}
        while True:
            line = f.readline()
            if not line:
                sys.exit("FAIL: serve connection closed mid-sweep")
            resp = json.loads(line)
            if not resp.get("ok"):
                sys.exit(f"FAIL: sweep cell failed: {resp!r}")
            if resp.get("sweep_done"):
                break
            cells[resp["cell"]] = resp["record"]
        if sorted(cells) != [0, 1]:
            sys.exit(f"FAIL: sweep streamed cells {sorted(cells)}, "
                     f"expected [0, 1]")
        if cells[0] != direct_rec:
            sys.exit("FAIL: sweep cell 0 (h5) differs from the "
                     "direct run's record")
        if cells[1] != json.loads(direct_h2)["records"][0]:
            sys.exit("FAIL: sweep cell 1 (h2) differs from a direct "
                     "h2 run's record")
        print("OK: server-side sweep cells byte-identical to direct "
              "runs, evictions counter surfaced")
        checks += 3

        # Simultaneous clients each get the direct run's bytes back —
        # the multi-client server must not interleave responses.
        import threading
        results = [None] * 3

        def client_run(i):
            c2 = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            c2.connect(sock_path)
            f2 = c2.makefile("rw")
            f2.write(json.dumps(
                {"op": "run", "id": "cli", "app": "worker",
                 "nodes": 8, "protocol": "h5",
                 "params": {"wss": "4", "iterations": "2"},
                 "tag": f"c{i}", "canonical": True}) + "\n")
            f2.flush()
            line = f2.readline()
            results[i] = json.loads(line) if line else None
            f2.close()
            c2.close()

        threads = [threading.Thread(target=client_run, args=(i,))
                   for i in range(len(results))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i, r in enumerate(results):
            if r is None or not r.get("ok"):
                sys.exit(f"FAIL: concurrent client {i} failed: {r!r}")
            if r.get("tag") != f"c{i}":
                sys.exit(f"FAIL: concurrent client {i} got tag "
                         f"{r.get('tag')!r}")
            if r.get("record") != direct_rec:
                sys.exit(f"FAIL: concurrent client {i}'s record "
                         f"differs from the direct run's")
        print(f"OK: {len(results)} concurrent clients served "
              f"byte-identical records")
        checks += 1

        down = rpc({"op": "shutdown"})
        if not down.get("ok"):
            sys.exit(f"FAIL: shutdown op failed: {down!r}")
        f.close()
        conn.close()
        if srv.wait(timeout=30) != 0:
            sys.exit(f"FAIL: serve exited with {srv.returncode}")
        print("OK: serve round-trip record identical, hit accounted, "
              "clean shutdown")
        checks += 3
    finally:
        if srv.poll() is None:
            srv.kill()
            srv.wait()
    # An epoch bump must go cold (stale entry replaced) and still
    # produce the identical document — invalidation changes cost,
    # never results. The entry count must not grow: the run's stale
    # entry is replaced in place (the sweep's other cell stays, stale
    # but untouched until something re-runs it).
    n_before = len([f for f in os.listdir(cache_dir)
                    if f.endswith(".swexrec")])
    bumped = canonical_doc(binary, spec + ["--cache-dir", cache_dir],
                           os.path.join(tmp, "bumped.json"),
                           extra_env={"SWEX_CACHE_EPOCH": "7"})
    if bumped != direct:
        sys.exit("FAIL: post-invalidation document differs from "
                 "direct")
    entries = [f for f in os.listdir(cache_dir)
               if f.endswith(".swexrec")]
    if len(entries) != n_before:
        sys.exit(f"FAIL: epoch bump left {len(entries)} entries "
                 f"(expected {n_before}: stale entry replaced, not "
                 f"added)")
    print("OK: $SWEX_CACHE_EPOCH bump recomputes to the identical "
          "document")
    checks += 1

    return checks


def run_cli(binary, tmp):
    """One tiny WORKER experiment; --json and $SWEX_RUN_JSON must
    both carry the same schema-valid document."""
    json_path = os.path.join(tmp, "run.json")
    env_path = os.path.join(tmp, "run_env.json")
    cmd = [binary, "--app", "worker", "--nodes", "4",
           "--protocol", "h5", "--wss", "2", "--iters", "2",
           "--seq", "--json", json_path]
    try:
        proc = subprocess.run(
            cmd,
            env=dict(os.environ, SWEX_RUN_JSON=env_path),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
    except OSError as e:
        sys.exit(f"FAIL: cannot run {binary}: {e}")
    if proc.returncode != 0:
        sys.exit(f"FAIL: {binary} exited with {proc.returncode}:\n"
                 f"{proc.stdout}")
    if "verification: PASSED" not in proc.stdout:
        sys.exit(f"FAIL: cli did not report verification:\n"
                 f"{proc.stdout}")
    n = check_run_json(json_path, expect_records=2)
    check_run_json(env_path, expect_records=2)

    # Directory records must omit machine_model; a snooping-bus run
    # must stamp it so downstream tooling can tell the two apart.
    records = [r for r in
               json.load(open(json_path, encoding="utf-8"))["records"]]
    if any("machine_model" in r for r in records):
        sys.exit("FAIL: directory record carries machine_model")
    snoop = cli_run(binary,
                    ["--app", "falseshare", "--nodes", "4",
                     "--protocol", "mesi"],
                    os.path.join(tmp, "run_snoop.json"))
    if snoop.get("machine_model") != "snoop":
        sys.exit(f"FAIL: snooping record machine_model is "
                 f"{snoop.get('machine_model')!r}, expected 'snoop'")
    if not snoop.get("verified"):
        sys.exit("FAIL: snooping record not verified")
    return n + 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("binary",
                    help="path to the micro_substrates binary "
                         "(or swex_cli with --cli)")
    ap.add_argument("--cli", action="store_true",
                    help="validate swex-run-v1 records from swex_cli")
    ap.add_argument("--replay-equiv", action="store_true",
                    help="validate swex-trace-v1 files and "
                         "direct-vs-replay bit-identity via swex_cli")
    ap.add_argument("--cache-equiv", action="store_true",
                    help="validate result-cache and serve byte-"
                         "identity via swex_cli")
    args = ap.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        if args.cache_equiv:
            n = check_cache_equiv(args.binary, tmp)
            print(f"OK: {n} cache equivalence checks passed")
        elif args.replay_equiv:
            n = check_replay_equiv(args.binary, tmp)
            print(f"OK: {n} replay equivalence checks passed")
        elif args.cli:
            n = run_cli(args.binary, tmp)
            print(f"OK: {n} run records validated")
        else:
            json_path = os.path.join(tmp, "bench.json")
            run_bench(args.binary, json_path)
            # A second run must merge, not mangle, the existing file.
            run_bench(args.binary, json_path)
            n = check_bench_json(json_path)
            print(f"OK: {n} entries validated")


if __name__ == "__main__":
    main()
