#!/usr/bin/env python3
"""Smoke-check the machine-readable output machinery.

Default mode runs micro_substrates with a tiny measurement budget,
pointing SWEX_BENCH_JSON at a scratch file, then validates the emitted
swex-bench-v1 trajectory: it must parse, carry the expected schema
tag, provide the required entries, and every metric must be a finite
number.

With --cli the positional binary is swex_cli; the script runs a tiny
experiment with --json and validates the emitted swex-run-v1 document
(schema tag, per-record required fields, finite metrics), and checks
that $SWEX_RUN_JSON produces the same document shape.

Both validators reject unknown schema versions outright. Exits
non-zero on any malformed or missing output, so CI catches a broken
reporting layer before anyone trusts a checked-in artifact.
"""

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile

REQUIRED_ENTRIES = [
    "BM_EventQueueScheduleRun",
    "BM_EventQueueWarm",
    "BM_EventQueueIntrusive",
    "BM_EventQueueFarFuture",
    "BM_EventQueueMixedDelays",
    "BM_MessagePoolSendRecv",
    "micro_substrates",
]

RECORD_REQUIRED = ["id", "app", "protocol", "nodes", "sequential",
                   "sim_cycles", "verified", "metrics", "host"]


def load_doc(json_path, expect_schema):
    if not os.path.exists(json_path):
        sys.exit(f"FAIL: run produced no {json_path}")
    with open(json_path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            sys.exit(f"FAIL: {json_path} is not valid JSON: {e}")
    schema = doc.get("schema")
    if schema != expect_schema:
        sys.exit(f"FAIL: unknown schema tag {schema!r} "
                 f"(expected {expect_schema!r})")
    return doc


def check_finite_numbers(path, obj):
    """Every numeric leaf under obj must be finite."""
    if isinstance(obj, dict):
        for k, v in obj.items():
            check_finite_numbers(f"{path}.{k}", v)
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            check_finite_numbers(f"{path}[{i}]", v)
    elif isinstance(obj, float) and not math.isfinite(obj):
        sys.exit(f"FAIL: {path} is not finite: {obj!r}")


def run_bench(binary, json_path):
    """Run the bench binary; old google-benchmark releases only accept
    a bare double for --benchmark_min_time, newer ones want a suffixed
    form, so try the suffixed spelling first and fall back."""
    env = dict(os.environ, SWEX_BENCH_JSON=json_path)
    for min_time in ("0.05x", "0.05"):
        try:
            proc = subprocess.run(
                [binary, f"--benchmark_min_time={min_time}"],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
        except OSError as e:
            sys.exit(f"FAIL: cannot run {binary}: {e}")
        if proc.returncode == 0:
            return proc.stdout
    sys.exit(f"FAIL: {binary} exited with {proc.returncode}:\n"
             f"{proc.stdout}")


def check_bench_json(json_path):
    doc = load_doc(json_path, "swex-bench-v1")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        sys.exit("FAIL: 'entries' missing or empty")

    by_name = {}
    for e in entries:
        if not isinstance(e.get("name"), str) or \
                not isinstance(e.get("metrics"), dict):
            sys.exit(f"FAIL: malformed entry {e!r}")
        for k, v in e["metrics"].items():
            if not isinstance(v, (int, float)) or \
                    not math.isfinite(v):
                sys.exit(f"FAIL: {e['name']}: metric {k!r} is not a "
                         f"finite number: {v!r}")
        by_name[e["name"]] = e["metrics"]

    missing = [n for n in REQUIRED_ENTRIES if n not in by_name]
    if missing:
        sys.exit(f"FAIL: required entries missing: {missing}")

    for name, metrics in by_name.items():
        if name.startswith("BM_") and \
                metrics.get("ns_per_op", 0) <= 0:
            sys.exit(f"FAIL: {name}: ns_per_op not positive")
    return len(entries)


def check_run_json(json_path, expect_records):
    doc = load_doc(json_path, "swex-run-v1")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        sys.exit("FAIL: 'records' missing or empty")
    if len(records) != expect_records:
        sys.exit(f"FAIL: expected {expect_records} records, "
                 f"got {len(records)}")
    for r in records:
        missing = [k for k in RECORD_REQUIRED if k not in r]
        if missing:
            sys.exit(f"FAIL: record {r.get('id')!r} missing "
                     f"fields: {missing}")
        if not r["verified"]:
            sys.exit(f"FAIL: record {r.get('id')!r} not verified")
        if r["sim_cycles"] <= 0:
            sys.exit(f"FAIL: record {r.get('id')!r} has "
                     f"non-positive sim_cycles")
        if not isinstance(r.get("stats"), dict) or not r["stats"]:
            sys.exit(f"FAIL: record {r.get('id')!r} has no stats "
                     f"tree")
        check_finite_numbers(r.get("id", "?"), r)
    seq = [r for r in records if r["sequential"]]
    if len(seq) != 1:
        sys.exit(f"FAIL: expected exactly 1 sequential record, "
                 f"got {len(seq)}")
    par = [r for r in records if not r["sequential"]]
    if not all(r.get("speedup", 0) > 0 for r in par):
        sys.exit("FAIL: parallel record missing positive speedup")
    return len(records)


def run_cli(binary, tmp):
    """One tiny WORKER experiment; --json and $SWEX_RUN_JSON must
    both carry the same schema-valid document."""
    json_path = os.path.join(tmp, "run.json")
    env_path = os.path.join(tmp, "run_env.json")
    cmd = [binary, "--app", "worker", "--nodes", "4",
           "--protocol", "h5", "--wss", "2", "--iters", "2",
           "--seq", "--json", json_path]
    try:
        proc = subprocess.run(
            cmd,
            env=dict(os.environ, SWEX_RUN_JSON=env_path),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
    except OSError as e:
        sys.exit(f"FAIL: cannot run {binary}: {e}")
    if proc.returncode != 0:
        sys.exit(f"FAIL: {binary} exited with {proc.returncode}:\n"
                 f"{proc.stdout}")
    if "verification: PASSED" not in proc.stdout:
        sys.exit(f"FAIL: cli did not report verification:\n"
                 f"{proc.stdout}")
    n = check_run_json(json_path, expect_records=2)
    check_run_json(env_path, expect_records=2)
    return n


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("binary",
                    help="path to the micro_substrates binary "
                         "(or swex_cli with --cli)")
    ap.add_argument("--cli", action="store_true",
                    help="validate swex-run-v1 records from swex_cli")
    args = ap.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        if args.cli:
            n = run_cli(args.binary, tmp)
            print(f"OK: {n} run records validated")
        else:
            json_path = os.path.join(tmp, "bench.json")
            run_bench(args.binary, json_path)
            # A second run must merge, not mangle, the existing file.
            run_bench(args.binary, json_path)
            n = check_bench_json(json_path)
            print(f"OK: {n} entries validated")


if __name__ == "__main__":
    main()
