#!/bin/sh
# Build the tier-1 test suite under ASan, UBSan, and TSan and run it
# under each, in separate build trees so sanitized and plain objects
# never mix. TSan matters since the sweep tier went parallel: the
# stress label runs the (app x protocol x seed) grid with --jobs 4,
# so any cross-run shared state in the simulator shows up as a race.
# The stress label also carries the fault-injection sweep, the
# record/replay stress leg (stress_replay: every grid cell records
# its op streams and replays them on a fresh machine, digests must
# match), the snooping machine-model grid (stress_snoop: 4 bus
# protocols x 2 arbitration disciplines over the sharing
# microbenchmarks, auditor attached), the content-addressed result
# cache leg (stress_cache: cold store then warm re-sweep against one
# scratch cache, so concurrent entry stores and the lock-free counters
# race under TSan), and the --jobs + replay + snoop + cache
# determinism gate (sweep_determinism); SWEX_DET_SEEDS keeps the
# gates' seed counts small enough for sanitized binaries. The tier-1
# pass also carries test_serve, which runs a real multi-client server
# in-process — per-connection reader threads feeding the shared run
# pool, server-side sweeps, chunked resume, overload shedding, idle
# timeouts, and SIGTERM drain — so the serve path's
# connection-lifetime discipline is TSan-checked on every matrix run.
# The stress label adds stress_serve, the socket-level chaos harness
# (torn writes, garbage, resets, stalled peers, kill-and-reconnect
# resumable sweeps over Unix and TCP); SWEX_SERVE_CONNS scales its
# connection count down the same way SWEX_DET_SEEDS scales the
# digest gates.
# Usage:
#
#   tools/ci_sanitize.sh [builddir-prefix]
#
# The prefix defaults to build-san; the script creates
# <prefix>-address/, <prefix>-undefined/, and <prefix>-thread/ next
# to the source tree. Exits non-zero on the first configure, build,
# or test failure.
set -eu

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
prefix=${1:-build-san}

for san in address undefined thread; do
    build_dir="${prefix}-${san}"
    echo "== ${san}: configuring ${build_dir}"
    cmake -S "${src_dir}" -B "${build_dir}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSWEX_SANITIZE="${san}"
    echo "== ${san}: building"
    cmake --build "${build_dir}" -j "$(nproc 2>/dev/null || echo 4)"
    echo "== ${san}: running tier-1 tests"
    ctest --test-dir "${build_dir}" --output-on-failure
    echo "== ${san}: running the audited protocol stress sweep"
    SWEX_DET_SEEDS=50 SWEX_SERVE_CONNS=48 \
        ctest --test-dir "${build_dir}" --output-on-failure -L stress
done
echo "== sanitizer matrix passed"
