/**
 * @file
 * stress_protocols: seeded interleaving stressor for the protocol
 * spectrum. For every protocol point and every seed in a range, runs a
 * workload on a jittered mesh (randomized per-message delivery delays)
 * with the coherence invariant auditor attached, and checks:
 *
 *  - the workload's own verification passes,
 *  - machine invariants hold and the auditor reports zero violations,
 *  - for interleaving-independent workloads (WORKER), the final
 *    memory image is bit-identical to a quiet full-map reference run.
 *
 * On failure it prints the protocol, app, and seed, every recorded
 * violation, the tail of the message trace, and a swex_cli command
 * line that replays the failing configuration, then exits non-zero.
 *
 * The (app x protocol x seed) grid is embarrassingly parallel: every
 * run is one thread-confined Machine. --jobs N executes the grid on a
 * host thread pool; results, per-pair summaries, and failure
 * diagnostics are buffered per run and printed in grid order after
 * the sweep drains, so the output (and the final digest of every
 * run's cycle count and memory image) is identical at any --jobs.
 *
 * The ctest registration runs a small seed count; the acceptance
 * sweep is `stress_protocols --app worker --seeds 200 --jobs 8`.
 */

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "audit/auditor.hh"
#include "base/logging.hh"
#include "core/spectrum.hh"
#include "exp/cache/result_cache.hh"
#include "exp/pool.hh"
#include "exp/spec.hh"
#include "machine/machine.hh"
#include "trace/recorder.hh"
#include "trace/replay.hh"
#include "trace/trace_format.hh"

using namespace swex;

namespace
{

struct Options
{
    int seeds = 5;
    std::uint64_t startSeed = 1;
    int nodes = 16;
    Cycles jitterMax = 37;
    unsigned jobs = 1;
    bool replay = false;       ///< record, replay, digest the replay
    std::string cacheDir;      ///< result cache; "" = every cell runs
    std::uint64_t cacheMaxBytes = 0;     ///< LRU budget (0=unbounded)
    std::uint64_t cacheMaxEntries = 0;   ///< LRU budget (0=unbounded)
    std::string family = "directory";   ///< directory|snoop|all
    std::string onlyApp;       ///< empty = all stress apps
    std::string onlyProtocol;  ///< empty = full grid

    // Adversarial fault tier (all zero = jitter-only stressing).
    unsigned drop = 0;         ///< per-mille drop rate
    unsigned dup = 0;          ///< per-mille duplication rate
    unsigned blackout = 0;     ///< per-mille blackout rate
    Tick deadline = 0;         ///< per-run cycle budget (0 = none)

    bool
    faultsOn() const
    {
        return drop != 0 || dup != 0 || blackout != 0;
    }
};

struct StressApp
{
    std::string name;
    AppParams params;
    bool imageStable;   ///< final memory independent of interleaving
};

/** The workloads the directory stressor sweeps. WORKER computes the
 *  same final memory under any interleaving; TSP's shared frontier
 *  makes its heap layout timing-dependent, so only its own
 *  verification and the auditor apply there. */
std::vector<StressApp>
stressApps()
{
    return {
        {"worker", {{"wss", "4"}, {"iterations", "2"}}, true},
        {"tsp", {{"cities", "6"}, {"frontier", "8"}}, false},
    };
}

/** The snooping-grid workloads: the sharing-pattern microbenchmarks.
 *  Seeds perturb their per-step compute through the `jitter` app
 *  parameter (the bus machine has no network to jitter), so every
 *  seed is a distinct deterministic interleaving. */
std::vector<StressApp>
snoopStressApps()
{
    return {
        {"falseshare", {{"iterations", "8"}}, false},
        {"padded", {{"iterations", "8"}}, false},
        {"hotline", {{"iterations", "8"}}, false},
    };
}

/** One cell of the protocol axis: a directory spectrum point or a
 *  (snooping protocol, bus arbitration) combination. */
struct GridPoint
{
    std::string label;          ///< e.g. "H5" or "MESI/fifo"
    bool snoop = false;
    ProtocolConfig dir;         ///< directory points only
    SnoopProtocol sp = SnoopProtocol::Mesi;
    BusArbitration arb = BusArbitration::Fifo;
};

std::vector<GridPoint>
directoryPoints()
{
    std::vector<GridPoint> out;
    for (const auto &pt : protocolSpectrum())
        out.push_back({pt.label, false, pt.protocol,
                       SnoopProtocol::Mesi, BusArbitration::Fifo});
    return out;
}

std::vector<GridPoint>
snoopPoints()
{
    std::vector<GridPoint> out;
    for (SnoopProtocol sp : {SnoopProtocol::Mesi, SnoopProtocol::Moesi,
                             SnoopProtocol::Mesif,
                             SnoopProtocol::Dragon}) {
        for (BusArbitration arb :
             {BusArbitration::Fifo, BusArbitration::RoundRobin}) {
            out.push_back({strfmt("%s/%s", snoopProtocolName(sp),
                                  busArbitrationName(arb)),
                           true, ProtocolConfig::fullMap(), sp, arb});
        }
    }
    return out;
}

/** The swex_cli spelling of a spectrum label, for replay lines. */
std::string
cliProtocolName(const std::string &label)
{
    if (label == "H0-ACK") return "h0";
    if (label == "H1-ACK") return "h1ack";
    if (label == "H1-LACK") return "h1lack";
    if (label == "FULLMAP") return "full";
    std::string out;
    for (char c : label)
        out += static_cast<char>(
            c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
    return out;   // H1..H5 -> h1..h5, DIR1SW -> dir1sw
}

[[noreturn]] void
badValue(const std::string &opt, const std::string &value)
{
    std::fprintf(stderr,
                 "stress_protocols: bad value '%s' for %s\n",
                 value.c_str(), opt.c_str());
    std::exit(2);
}

long
parseLong(const std::string &opt, const std::string &value, long lo,
          long hi)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
        v < lo || v > hi)
        badValue(opt, value);
    return v;
}

struct RunResult
{
    bool ok = true;
    Tick cycles = 0;
    std::uint64_t image = 0;
    std::string diagnostics;   ///< failure report; empty when ok
};

/** One stress run. Runs on a worker thread: all diagnostics are
 *  buffered into the result, never printed here, so concurrent runs
 *  cannot interleave their reports. @p adversarial enables the
 *  jitter/fault stressors from @p opt; the reference run clears it. */
RunResult
stressRun(const StressApp &sa, const GridPoint &pt,
          const Options &opt, std::uint64_t seed, bool adversarial,
          const std::uint64_t *expect_image)
{
    // The bus machine has no network: seeds perturb the app's own
    // compute via the `jitter` parameter instead of delivery delays.
    const Cycles jitter_max =
        adversarial && !pt.snoop ? opt.jitterMax : 0;

    AppParams params = sa.params;
    if (pt.snoop && adversarial)
        params["jitter"] = std::to_string(seed);

    ExperimentSpec spec;
    spec.app = sa.name;
    spec.params = params;
    spec.nodes = opt.nodes;
    spec.victimEntries = 6;
    if (pt.snoop) {
        spec.machineModel = MachineModel::Snoop;
        spec.snoopProtocol = pt.sp;
        spec.busArbitration = pt.arb;
    } else {
        spec.protocol = pt.dir;
        spec.jitterMax = jitter_max;
        spec.jitterSeed = seed;
        if (adversarial) {
            spec.faultDropPerMille = opt.drop;
            spec.faultDupPerMille = opt.dup;
            spec.faultBlackoutPerMille = opt.blackout;
            spec.faultSeed = seed;   // one seed replays the whole run
            spec.deadline = opt.deadline;
        }
    }

    MachineConfig mc = spec.machine();
    mc.net.traceDepth = 64;
    // --replay: capture the op streams during the direct run so the
    // cell can be re-executed from the trace below.
    const bool replaying = opt.replay && adversarial;
    if (replaying)
        mc.executionMode = ExecutionMode::Record;

    auto app = AppRegistry::instance().make(sa.name, params,
                                            opt.nodes);
    Machine m(mc);
    CoherenceAuditor auditor(CoherenceAuditor::Mode::Collect);
    m.attachAuditor(&auditor);

    RunResult r;
    r.cycles = app->runParallel(m);
    const bool completed =
        m.runStatus() == Machine::RunStatus::Completed;
    bool verified = false;
    if (completed) {
        // Abandoned runs hold transient directory state; verification
        // and the panic-on-violation invariant checks only make sense
        // at quiescence.
        verified = app->verify(m);
        m.checkInvariants();
    }
    r.image = m.imageHash();

    std::vector<std::string> failures;
    if (!completed) {
        failures.push_back(strfmt(
            "%s after %llu cycles; last forward progress at tick %llu",
            m.runStatus() == Machine::RunStatus::DeadlineExceeded
                ? "deadline exceeded"
                : "deadlocked",
            static_cast<unsigned long long>(r.cycles),
            static_cast<unsigned long long>(m.lastProgressTick())));
    } else if (!verified) {
        failures.push_back("application verification failed");
    }
    if (auditor.violationCount() > 0) {
        failures.push_back(strfmt(
            "%llu coherence invariant violations",
            static_cast<unsigned long long>(auditor.violationCount())));
    }
    if (completed && expect_image && r.image != *expect_image) {
        failures.push_back(strfmt(
            "final memory image %016llx differs from the quiet "
            "full-map reference %016llx",
            static_cast<unsigned long long>(r.image),
            static_cast<unsigned long long>(*expect_image)));
    }

    // --replay: re-execute the cell from the recorded op streams on a
    // fresh machine under the identical (config-bound) configuration
    // and require bit-identity; the digest is then computed from the
    // replay machine's numbers, so `--replay` and direct sweeps must
    // print the same grid digest. Cells that blew their deadline have
    // truncated streams and cannot replay; their direct numbers feed
    // the digest unchanged.
    if (replaying && completed) {
        const TraceRecorder *rec = m.recorder();
        trace::Trace t;
        t.meta.appNodes = static_cast<std::uint32_t>(opt.nodes);
        t.meta.numThreads =
            static_cast<std::uint32_t>(rec->numThreads());
        t.meta.configFingerprint = trace::configFingerprint(mc);
        t.meta.recordedCycles = r.cycles;
        t.meta.recordedImageHash = r.image;
        t.meta.seed = mc.seed;
        t.meta.app = sa.name;
        t.meta.params = trace::canonicalAppParams(params);
        t.meta.protocol = mc.protocol.name();
        for (int i = 0; i < rec->numThreads(); ++i)
            t.streams.push_back(rec->stream(i));
        trace::ReplayProgram prog(std::move(t));

        MachineConfig rmc = mc;
        rmc.executionMode = ExecutionMode::Replay;
        auto rapp = AppRegistry::instance().make(sa.name, params,
                                                opt.nodes);
        Machine rm(rmc);
        rapp->setup(rm);
        Tick rcycles = rm.runReplay(prog.sources());
        std::uint64_t rimage = rm.imageHash();
        if (rm.runStatus() != Machine::RunStatus::Completed ||
            rcycles != r.cycles || rimage != r.image) {
            failures.push_back(strfmt(
                "replay diverged from direct execution: cycles "
                "%llu vs %llu, image %016llx vs %016llx",
                static_cast<unsigned long long>(rcycles),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(rimage),
                static_cast<unsigned long long>(r.image)));
        }
        r.cycles = rcycles;
        r.image = rimage;
    }

    if (!failures.empty()) {
        r.ok = false;
        std::ostringstream os;
        os << strfmt("\nFAIL: app=%s protocol=%s nodes=%d jitter=%llu "
                     "faults=%u,%u,%u seed=%llu\n",
                     sa.name.c_str(), pt.label.c_str(), opt.nodes,
                     static_cast<unsigned long long>(jitter_max),
                     adversarial ? opt.drop : 0,
                     adversarial ? opt.dup : 0,
                     adversarial ? opt.blackout : 0,
                     static_cast<unsigned long long>(seed));
        for (const std::string &f : failures)
            os << "  " << f << "\n";
        for (const AuditViolation &v : auditor.violations())
            os << "  audit: " << v.describe() << "\n";
        if (!completed) {
            std::string stalls = auditor.stallSummary();
            if (!stalls.empty())
                os << "stalled transactions:\n" << stalls;
        }
        if (const DeliveryLayer *d = m.network.delivery()) {
            os << strfmt("delivery: sent=%.0f delivered=%.0f "
                         "drops=%.0f dups=%.0f retransmits=%.0f "
                         "max attempts=%u\n",
                         d->sent.value(), d->delivered.value(),
                         d->dropsInjected.value(),
                         d->dupsInjected.value(),
                         d->retransmits.value(), d->maxAttempts());
        }
        os << "last messages delivered:\n";
        m.network.dumpTrace(os);
        // The stress machine uses the default machine seed; only the
        // jitter and fault streams (directory) or the app's jitter
        // parameter (snoop) are seeded per run, so the replay sets
        // those knobs (NOT --seed, which would change the machine).
        // Every reproduction flag appears even at its default, so the
        // line is self-contained. Snoop seeds ride in `params`
        // already, so the --param loop reproduces them.
        std::string replay;
        if (pt.snoop) {
            std::string proto = snoopProtocolName(pt.sp);
            for (char &c : proto)
                c = static_cast<char>(std::tolower(
                    static_cast<unsigned char>(c)));
            replay = strfmt(
                "swex_cli --app %s --nodes %d --protocol %s --bus %s "
                "--audit",
                sa.name.c_str(), opt.nodes, proto.c_str(),
                busArbitrationName(pt.arb));
        } else {
            replay = strfmt(
                "swex_cli --app %s --nodes %d --protocol %s --victim "
                "6 --jitter %llu --jitter-seed %llu --faults "
                "%u,%u,%u --fault-seed %llu --deadline %llu --audit",
                sa.name.c_str(), opt.nodes,
                cliProtocolName(pt.label).c_str(),
                static_cast<unsigned long long>(jitter_max),
                static_cast<unsigned long long>(seed),
                adversarial ? opt.drop : 0, adversarial ? opt.dup : 0,
                adversarial ? opt.blackout : 0,
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(
                    adversarial ? opt.deadline : 0));
        }
        for (const auto &[k, v] : params)
            replay += strfmt(" --param %s=%s", k.c_str(), v.c_str());
        os << "replay: " << replay << "\n";
        r.diagnostics = os.str();
    }
    m.attachAuditor(nullptr);
    return r;
}

/**
 * The declarative spec of one adversarial grid cell, mirroring the
 * knobs stressRun() applies — the result-cache key for --cache. A
 * warm cell's stored (cycles, image) pair feeds the summaries and
 * the grid digest exactly as a fresh run's would, so warm, cold, and
 * cache-off sweeps print the same digest bit for bit.
 */
ExperimentSpec
cellSpec(const StressApp &sa, const GridPoint &pt, const Options &opt,
         std::uint64_t seed)
{
    ExperimentSpec spec;
    spec.id = strfmt("stress/%s/%s/s%llu", sa.name.c_str(),
                     pt.label.c_str(),
                     static_cast<unsigned long long>(seed));
    spec.app = sa.name;
    spec.params = sa.params;
    spec.nodes = opt.nodes;
    spec.victimEntries = 6;
    spec.audit = true;
    if (pt.snoop) {
        spec.machineModel = MachineModel::Snoop;
        spec.snoopProtocol = pt.sp;
        spec.busArbitration = pt.arb;
        spec.params["jitter"] = std::to_string(seed);
    } else {
        spec.protocol = pt.dir;
        spec.jitterMax = opt.jitterMax;
        spec.jitterSeed = seed;
        spec.faultDropPerMille = opt.drop;
        spec.faultDupPerMille = opt.dup;
        spec.faultBlackoutPerMille = opt.blackout;
        spec.faultSeed = seed;
        spec.deadline = opt.deadline;
    }
    return spec;
}

/** Quiet full-map run: the reference memory image for this app. */
std::uint64_t
referenceImage(const StressApp &sa, const Options &opt)
{
    RunResult r = stressRun(
        sa, {"FULLMAP", false, ProtocolConfig::fullMap()}, opt,
        /*seed=*/0, /*adversarial=*/false, nullptr);
    if (!r.ok) {
        std::fputs(r.diagnostics.c_str(), stderr);
        std::fprintf(stderr, "stress_protocols: reference run of %s "
                             "failed; aborting\n", sa.name.c_str());
        std::exit(1);
    }
    return r.image;
}

void
usage()
{
    std::printf(
        "stress_protocols -- seeded jitter sweep over the protocol "
        "spectrum\n\n"
        "  --seeds <n>       seeds per (app, protocol) pair "
        "(default 5)\n"
        "  --start-seed <s>  first seed (default 1)\n"
        "  --nodes <n>       machine size (default 16)\n"
        "  --jitter <c>      max extra delivery delay (default 37)\n"
        "  --jobs <n>        concurrent runs on host threads "
        "(default 1; output is identical at any value)\n"
        "  --replay          record each cell's op streams, replay "
        "them on a fresh machine, and digest the replay run; the "
        "grid digest must match a direct sweep bit for bit\n"
        "  --cache <dir>     content-addressed result cache: warm "
        "cells serve their stored (cycles, image) without running; "
        "cold cells run as usual and store back. The grid digest is "
        "identical warm, cold, or with the cache off\n"
        "  --cache-max-bytes <n>   bound the cache directory (0 =\n"
        "                    unbounded); stores evict LRU-by-mtime\n"
        "  --cache-max-entries <n> same bound, counted in entries\n"
        "  --family <f>      directory|snoop|all: which machine-model\n"
        "                    grid to sweep (default directory; snoop\n"
        "                    = 4 protocols x 2 bus disciplines over\n"
        "                    the sharing microbenchmarks)\n"
        "  --app <name>      restrict to one app (worker|tsp, or\n"
        "                    falseshare|padded|hotline with snoop)\n"
        "  --protocol <lbl>  restrict to one grid label "
        "(e.g. DIR1SW or MESI/fifo)\n"
        "  --drop <pm>       fault tier: per-mille wire drop rate\n"
        "  --dup <pm>        fault tier: per-mille duplication rate\n"
        "  --blackout <pm>   fault tier: per-mille blackout rate\n"
        "  --deadline <c>    per-run cycle budget; exceeding it is a\n"
        "                    structured failure, never a hang "
        "(default 20000000 when any fault rate is set)\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                badValue(a, "<missing>");
            return argv[++i];
        };
        if (a == "--seeds")
            opt.seeds = static_cast<int>(
                parseLong(a, next(), 1, 1'000'000));
        else if (a == "--start-seed")
            opt.startSeed = static_cast<std::uint64_t>(
                parseLong(a, next(), 0, 1'000'000'000));
        else if (a == "--nodes")
            opt.nodes = static_cast<int>(
                parseLong(a, next(), 1, maxNodes));
        else if (a == "--jitter")
            opt.jitterMax = static_cast<Cycles>(
                parseLong(a, next(), 0, 1 << 20));
        else if (a == "--jobs")
            opt.jobs = static_cast<unsigned>(
                parseLong(a, next(), 1, 256));
        else if (a == "--replay")
            opt.replay = true;
        else if (a == "--cache")
            opt.cacheDir = next();
        else if (a == "--cache-max-bytes")
            opt.cacheMaxBytes = static_cast<std::uint64_t>(
                parseLong(a, next(), 0, 1'000'000'000'000l));
        else if (a == "--cache-max-entries")
            opt.cacheMaxEntries = static_cast<std::uint64_t>(
                parseLong(a, next(), 0, 1'000'000'000l));
        else if (a == "--family") {
            opt.family = next();
            if (opt.family != "directory" && opt.family != "snoop" &&
                opt.family != "all")
                badValue(a, opt.family);
        }
        else if (a == "--app")
            opt.onlyApp = next();
        else if (a == "--protocol")
            opt.onlyProtocol = next();
        else if (a == "--drop")
            opt.drop = static_cast<unsigned>(
                parseLong(a, next(), 0, 1000));
        else if (a == "--dup")
            opt.dup = static_cast<unsigned>(
                parseLong(a, next(), 0, 1000));
        else if (a == "--blackout")
            opt.blackout = static_cast<unsigned>(
                parseLong(a, next(), 0, 1000));
        else if (a == "--deadline")
            opt.deadline = static_cast<Tick>(
                parseLong(a, next(), 1, 4'000'000'000));
        else {
            usage();
            return a == "--help" || a == "-h" ? 0 : 2;
        }
    }

    // A faulty wire can livelock a run by design (every retransmission
    // re-dropped); the fault tier therefore always runs under a
    // deadline so the sweep finishes whatever the protocol does.
    if (opt.faultsOn() && opt.deadline == 0)
        opt.deadline = 20'000'000;

    setQuiet(true);

    // Build the flat grid up front. The reference images are computed
    // serially first (one quiet run per image-stable app); every grid
    // cell then only reads them.
    struct Pair
    {
        std::size_t app;        ///< index into apps
        GridPoint pt;
        std::size_t firstJob;   ///< index of this pair's first seed
    };
    struct Job
    {
        std::size_t pair;
        std::uint64_t seed;
    };

    // Each family pairs its own workloads with its own protocol
    // axis; `all` concatenates the two grids. The pair order is the
    // digest order, so the directory prefix of an `all` sweep prints
    // the same per-pair summaries as a pure directory sweep.
    std::vector<StressApp> apps;
    std::vector<std::uint64_t> references;   ///< 0 = no image check
    std::vector<Pair> pairs;
    std::vector<Job> jobs;
    auto addFamily = [&](const std::vector<StressApp> &fam_apps,
                         const std::vector<GridPoint> &points) {
        for (const StressApp &sa : fam_apps) {
            if (!opt.onlyApp.empty() && sa.name != opt.onlyApp)
                continue;
            apps.push_back(sa);
            references.push_back(
                sa.imageStable ? referenceImage(sa, opt) : 0);
            for (const GridPoint &pt : points) {
                if (!opt.onlyProtocol.empty() &&
                    pt.label != opt.onlyProtocol)
                    continue;
                pairs.push_back({apps.size() - 1, pt, jobs.size()});
                for (int s = 0; s < opt.seeds; ++s)
                    jobs.push_back({pairs.size() - 1,
                                    opt.startSeed +
                                        static_cast<std::uint64_t>(s)});
            }
        }
    };
    if (opt.family == "directory" || opt.family == "all")
        addFamily(stressApps(), directoryPoints());
    if (opt.family == "snoop" || opt.family == "all")
        addFamily(snoopStressApps(), snoopPoints());

    // --cache: grid cells become content-addressed. Only passing runs
    // are stored (a failure must re-run and re-diagnose every sweep),
    // so a hit is always a pass and carries the direct run's exact
    // (cycles, image) pair into the digest.
    std::unique_ptr<cache::ResultCache> rcache;
    if (!opt.cacheDir.empty())
        rcache = std::make_unique<cache::ResultCache>(
            opt.cacheDir, cache::CodeVersions::current(),
            cache::ResultCache::Budget{opt.cacheMaxBytes,
                                       opt.cacheMaxEntries});

    auto t0 = std::chrono::steady_clock::now();
    std::vector<RunResult> results(jobs.size());
    parallelFor(jobs.size(), opt.jobs, [&](std::size_t i) {
        const Job &j = jobs[i];
        const Pair &p = pairs[j.pair];
        const std::uint64_t *expect =
            apps[p.app].imageStable ? &references[p.app] : nullptr;
        ExperimentSpec spec;
        if (rcache) {
            spec = cellSpec(apps[p.app], p.pt, opt, j.seed);
            RunRecord rec;
            if (rcache->lookup(spec, rec)) {
                results[i].ok = true;
                results[i].cycles = rec.simCycles;
                results[i].image = rec.imageHash;
                return;
            }
        }
        results[i] = stressRun(apps[p.app], p.pt, opt, j.seed,
                               /*adversarial=*/true, expect);
        if (rcache && results[i].ok) {
            RunRecord rec;
            rec.id = spec.id;
            rec.app = spec.app;
            rec.protocol = p.pt.label;
            rec.machineModel = p.pt.snoop ? "snoop" : "directory";
            rec.nodes = opt.nodes;
            rec.verified = true;
            rec.simCycles = results[i].cycles;
            rec.imageHash = results[i].image;
            std::string err;
            if (!rcache->store(spec, rec, err))
                std::fprintf(stderr, "cache store %s: %s\n",
                             spec.id.c_str(), err.c_str());
        }
    });
    double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();

    // Everything below replays the grid in order: diagnostics,
    // summaries, and the digest come out identical at any --jobs.
    int runs = static_cast<int>(jobs.size());
    int failed = 0;
    std::uint64_t digest = 1469598103934665603ull;   // FNV offset
    for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
        const Pair &p = pairs[pi];
        std::size_t end = pi + 1 < pairs.size()
                              ? pairs[pi + 1].firstJob
                              : jobs.size();
        int pass = 0, total = 0;
        for (std::size_t i = p.firstJob; i < end; ++i) {
            const RunResult &r = results[i];
            ++total;
            if (r.ok) {
                ++pass;
            } else {
                ++failed;
                std::fputs(r.diagnostics.c_str(), stderr);
            }
            digest = (digest ^ static_cast<std::uint64_t>(r.cycles)) *
                     1099511628211ull;
            digest = (digest ^ r.image) * 1099511628211ull;
        }
        std::printf("%-8s %-8s %4d/%d seeds ok\n",
                    apps[p.app].name.c_str(), p.pt.label.c_str(),
                    pass, total);
        std::fflush(stdout);
    }

    std::printf("grid digest %016llx (%d runs, --jobs %u, %.2fs)\n",
                static_cast<unsigned long long>(digest), runs,
                opt.jobs, wall);
    if (rcache) {
        cache::ResultCache::Counters c = rcache->counters();
        std::printf("cache: %llu hits, %llu misses, %llu stores "
                    "(%llu corrupt, %llu stale, %llu evicted)\n",
                    static_cast<unsigned long long>(c.hits),
                    static_cast<unsigned long long>(c.misses),
                    static_cast<unsigned long long>(c.stores),
                    static_cast<unsigned long long>(c.corrupt),
                    static_cast<unsigned long long>(c.stale),
                    static_cast<unsigned long long>(c.evictions));
    }
    if (failed > 0) {
        std::fprintf(stderr,
                     "stress_protocols: %d of %d runs FAILED\n",
                     failed, runs);
        return 1;
    }
    std::printf("stress_protocols: %d runs, all passed\n", runs);
    return 0;
}
