/**
 * @file
 * stress_protocols: seeded interleaving stressor for the protocol
 * spectrum. For every protocol point and every seed in a range, runs a
 * workload on a jittered mesh (randomized per-message delivery delays)
 * with the coherence invariant auditor attached, and checks:
 *
 *  - the workload's own verification passes,
 *  - machine invariants hold and the auditor reports zero violations,
 *  - for interleaving-independent workloads (WORKER), the final
 *    memory image is bit-identical to a quiet full-map reference run.
 *
 * On failure it prints the protocol, app, and seed, every recorded
 * violation, the tail of the message trace, and a swex_cli command
 * line that replays the failing configuration, then exits non-zero.
 *
 * The ctest registration runs a small seed count; the acceptance
 * sweep is `stress_protocols --app worker --seeds 200`.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "audit/auditor.hh"
#include "base/logging.hh"
#include "core/spectrum.hh"
#include "exp/spec.hh"
#include "machine/machine.hh"

using namespace swex;

namespace
{

struct Options
{
    int seeds = 5;
    std::uint64_t startSeed = 1;
    int nodes = 16;
    Cycles jitterMax = 37;
    std::string onlyApp;       ///< empty = all stress apps
    std::string onlyProtocol;  ///< empty = full spectrum
};

struct StressApp
{
    std::string name;
    AppParams params;
    bool imageStable;   ///< final memory independent of interleaving
};

/** The workloads the stressor sweeps. WORKER computes the same final
 *  memory under any interleaving; TSP's shared frontier makes its
 *  heap layout timing-dependent, so only its own verification and the
 *  auditor apply there. */
std::vector<StressApp>
stressApps()
{
    return {
        {"worker", {{"wss", "4"}, {"iterations", "2"}}, true},
        {"tsp", {{"cities", "6"}, {"frontier", "8"}}, false},
    };
}

/** The swex_cli spelling of a spectrum label, for replay lines. */
std::string
cliProtocolName(const std::string &label)
{
    if (label == "H0-ACK") return "h0";
    if (label == "H1-ACK") return "h1ack";
    if (label == "H1-LACK") return "h1lack";
    if (label == "FULLMAP") return "full";
    std::string out;
    for (char c : label)
        out += static_cast<char>(
            c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
    return out;   // H1..H5 -> h1..h5, DIR1SW -> dir1sw
}

[[noreturn]] void
badValue(const std::string &opt, const std::string &value)
{
    std::fprintf(stderr,
                 "stress_protocols: bad value '%s' for %s\n",
                 value.c_str(), opt.c_str());
    std::exit(2);
}

long
parseLong(const std::string &opt, const std::string &value, long lo,
          long hi)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
        v < lo || v > hi)
        badValue(opt, value);
    return v;
}

struct RunResult
{
    bool ok = true;
    Tick cycles = 0;
    std::uint64_t image = 0;
};

/** One stress run; prints diagnostics and returns ok=false on any
 *  verification or invariant failure. */
RunResult
stressRun(const StressApp &sa, const SpectrumPoint &pt, int nodes,
          Cycles jitter_max, std::uint64_t seed,
          const std::uint64_t *expect_image)
{
    ExperimentSpec spec;
    spec.app = sa.name;
    spec.params = sa.params;
    spec.protocol = pt.protocol;
    spec.nodes = nodes;
    spec.victimEntries = 6;
    spec.jitterMax = jitter_max;
    spec.jitterSeed = seed;

    MachineConfig mc = spec.machine();
    mc.net.traceDepth = 64;

    auto app = AppRegistry::instance().make(sa.name, sa.params, nodes);
    Machine m(mc);
    CoherenceAuditor auditor(CoherenceAuditor::Mode::Collect);
    m.attachAuditor(&auditor);

    RunResult r;
    r.cycles = app->runParallel(m);
    bool verified = app->verify(m);
    m.checkInvariants();
    r.image = m.imageHash();

    std::vector<std::string> failures;
    if (!verified)
        failures.push_back("application verification failed");
    if (auditor.violationCount() > 0) {
        failures.push_back(strfmt(
            "%llu coherence invariant violations",
            static_cast<unsigned long long>(auditor.violationCount())));
    }
    if (expect_image && r.image != *expect_image) {
        failures.push_back(strfmt(
            "final memory image %016llx differs from the quiet "
            "full-map reference %016llx",
            static_cast<unsigned long long>(r.image),
            static_cast<unsigned long long>(*expect_image)));
    }

    if (!failures.empty()) {
        r.ok = false;
        std::fprintf(stderr,
                     "\nFAIL: app=%s protocol=%s nodes=%d jitter=%llu "
                     "seed=%llu\n",
                     sa.name.c_str(), pt.label.c_str(), nodes,
                     static_cast<unsigned long long>(jitter_max),
                     static_cast<unsigned long long>(seed));
        for (const std::string &f : failures)
            std::fprintf(stderr, "  %s\n", f.c_str());
        for (const AuditViolation &v : auditor.violations())
            std::fprintf(stderr, "  audit: %s\n",
                         v.describe().c_str());
        std::fprintf(stderr, "last messages delivered:\n");
        m.network.dumpTrace(std::cerr);
        std::string replay = strfmt(
            "swex_cli --app %s --nodes %d --protocol %s --victim 6 "
            "--jitter %llu --seed %llu --audit",
            sa.name.c_str(), nodes,
            cliProtocolName(pt.label).c_str(),
            static_cast<unsigned long long>(jitter_max),
            static_cast<unsigned long long>(seed));
        for (const auto &[k, v] : sa.params)
            replay += strfmt(" --param %s=%s", k.c_str(), v.c_str());
        std::fprintf(stderr, "replay: %s\n", replay.c_str());
    }
    m.attachAuditor(nullptr);
    return r;
}

/** Quiet full-map run: the reference memory image for this app. */
std::uint64_t
referenceImage(const StressApp &sa, int nodes)
{
    RunResult r = stressRun(sa, {"FULLMAP", ProtocolConfig::fullMap()},
                            nodes, /*jitter_max=*/0, /*seed=*/0,
                            nullptr);
    if (!r.ok) {
        std::fprintf(stderr, "stress_protocols: reference run of %s "
                             "failed; aborting\n", sa.name.c_str());
        std::exit(1);
    }
    return r.image;
}

void
usage()
{
    std::printf(
        "stress_protocols -- seeded jitter sweep over the protocol "
        "spectrum\n\n"
        "  --seeds <n>       seeds per (app, protocol) pair "
        "(default 5)\n"
        "  --start-seed <s>  first seed (default 1)\n"
        "  --nodes <n>       machine size (default 16)\n"
        "  --jitter <c>      max extra delivery delay (default 37)\n"
        "  --app <name>      restrict to one app (worker|tsp)\n"
        "  --protocol <lbl>  restrict to one spectrum label "
        "(e.g. DIR1SW)\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                badValue(a, "<missing>");
            return argv[++i];
        };
        if (a == "--seeds")
            opt.seeds = static_cast<int>(
                parseLong(a, next(), 1, 1'000'000));
        else if (a == "--start-seed")
            opt.startSeed = static_cast<std::uint64_t>(
                parseLong(a, next(), 0, 1'000'000'000));
        else if (a == "--nodes")
            opt.nodes = static_cast<int>(
                parseLong(a, next(), 1, maxNodes));
        else if (a == "--jitter")
            opt.jitterMax = static_cast<Cycles>(
                parseLong(a, next(), 0, 1 << 20));
        else if (a == "--app")
            opt.onlyApp = next();
        else if (a == "--protocol")
            opt.onlyProtocol = next();
        else {
            usage();
            return a == "--help" || a == "-h" ? 0 : 2;
        }
    }

    setQuiet(true);
    int runs = 0, failed = 0;
    for (const StressApp &sa : stressApps()) {
        if (!opt.onlyApp.empty() && sa.name != opt.onlyApp)
            continue;
        std::uint64_t reference = 0;
        if (sa.imageStable)
            reference = referenceImage(sa, opt.nodes);
        for (const auto &pt : protocolSpectrum()) {
            if (!opt.onlyProtocol.empty() &&
                pt.label != opt.onlyProtocol)
                continue;
            int pass = 0;
            for (int s = 0; s < opt.seeds; ++s) {
                std::uint64_t seed =
                    opt.startSeed + static_cast<std::uint64_t>(s);
                RunResult r = stressRun(
                    sa, pt, opt.nodes, opt.jitterMax, seed,
                    sa.imageStable ? &reference : nullptr);
                ++runs;
                if (r.ok)
                    ++pass;
                else
                    ++failed;
            }
            std::printf("%-8s %-8s %4d/%d seeds ok\n",
                        sa.name.c_str(), pt.label.c_str(), pass,
                        opt.seeds);
            std::fflush(stdout);
        }
    }

    if (failed > 0) {
        std::fprintf(stderr,
                     "stress_protocols: %d of %d runs FAILED\n",
                     failed, runs);
        return 1;
    }
    std::printf("stress_protocols: %d runs, all passed\n", runs);
    return 0;
}
