/**
 * @file
 * Socket-level chaos harness for the sweep server (exp/serve.*) and
 * its client library (exp/client.*): the serving tier's analogue of
 * stress_protocols. One in-process server (Unix socket + TCP on an
 * ephemeral port, shared pool, small admission bound, short idle and
 * send timeouts) is attacked by N seeded connections cycling through
 * misbehaviors:
 *
 *   well-behaved RPC     torn write (half a request, pause, rest)
 *   abandoned half-line  garbage line then a valid request
 *   RST mid-sweep        stalled peer that never reads
 *   guaranteed shedding  kill-and-reconnect resumable sweeps
 *
 * The gates, in order of importance: (1) no hangs — every read in
 * the harness is deadline-bounded, so a wedged server fails loudly;
 * (2) no torn responses — every line that does arrive parses as a
 * whole JSON object; (3) equivalence — chaos-interrupted chunked
 * sweeps converge to canonical record bytes identical to a direct
 * (in-process, no server) run of the same grid, and the final clean
 * sweep digest matches the direct digest printed by --direct. The
 * digest line ("grid digest <hex> (...)") is what
 * tools/sweep_determinism.sh leg 6 compares across modes.
 *
 * Usage: stress_serve [--conns N] [--jobs N] [--seed N] [--direct]
 *   --direct computes the grid digest without any server (the
 *   reference side of the equivalence check). SWEX_SERVE_CONNS
 *   overrides the default connection count (sanitizer legs shrink
 *   it).
 */

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "exp/client.hh"
#include "exp/runner.hh"
#include "exp/serve.hh"
#include "exp/wire_json.hh"

using namespace swex;

namespace
{

// ---------------------------------------------------------------
// The equivalence grid: small enough to re-run hundreds of times
// warm, varied enough that a resume bug (lost cell, swapped cell)
// cannot produce the right digest. Order: protocol-major,
// seed-minor — the same row-major order the server enumerates.
constexpr int gridNodes = 4;
const char *const gridProtocols[] = {"h2", "h5"};
constexpr std::uint64_t gridSeeds[] = {1, 2, 3, 4, 5, 6};
constexpr std::size_t gridCells =
    sizeof(gridProtocols) / sizeof(gridProtocols[0]) *
    sizeof(gridSeeds) / sizeof(gridSeeds[0]);

ExperimentSpec
gridSpec(std::size_t cell)
{
    constexpr std::size_t nseeds =
        sizeof(gridSeeds) / sizeof(gridSeeds[0]);
    ExperimentSpec spec;
    spec.id = "serve";   // the server's default id: byte parity
    spec.app = "worker";
    spec.nodes = gridNodes;
    spec.victimEntries = 6;
    spec.protocol = gridProtocols[cell / nseeds] == std::string("h2")
                        ? ProtocolConfig::hw(2)
                        : ProtocolConfig::hw(5);
    spec.seed = gridSeeds[cell % nseeds];
    return spec;
}

/** The server-side sweep request for the grid (no cursor/chunk; the
 *  client library splices those per chunk). */
std::string
gridSweepRequest()
{
    std::ostringstream os;
    os << "{\"op\":\"sweep\",\"app\":\"worker\",\"nodes\":"
       << gridNodes << ",\"victim\":6,\"canonical\":true,"
       << "\"grid\":{\"protocol\":[";
    for (std::size_t p = 0; p < 2; ++p)
        os << (p ? "," : "") << '"' << gridProtocols[p] << '"';
    os << "],\"seed\":[";
    for (std::size_t s = 0; s < 6; ++s)
        os << (s ? "," : "") << gridSeeds[s];
    os << "]}}";
    return os.str();
}

/** Canonical record bytes for @p cell, straight from the runner —
 *  what the server must hand back for that cell, byte for byte. */
std::string
directRecord(const Runner &runner, std::size_t cell)
{
    Runner::ExecSource src = Runner::ExecSource::Sim;
    RunRecord rec = runner.execute(gridSpec(cell), &src);
    std::ostringstream os;
    rec.writeJson(os, /*canonical=*/true);
    return os.str();
}

std::uint64_t
fnv1a(std::uint64_t h, const std::string &bytes)
{
    for (char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
digestRecords(const std::vector<std::string> &records)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const std::string &r : records) {
        h = fnv1a(h, r);
        h = fnv1a(h, "\n");
    }
    return h;
}

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

// ---------------------------------------------------------------
// Raw-socket helpers for the misbehaving clients (the well-behaved
// ones use the client library; the attackers need byte-level
// control the library rightly does not offer).

struct Failures
{
    std::atomic<unsigned> count{0};
    std::mutex m;
    std::vector<std::string> messages;

    void
    add(const std::string &msg)
    {
        count.fetch_add(1);
        std::lock_guard<std::mutex> hold(m);
        if (messages.size() < 20)
            messages.push_back(msg);
    }
};

int
rawConnectUnix(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
rawSend(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

/** Deadline-bounded line read — the no-hangs gate for the raw
 *  clients. @return false on deadline or close. */
bool
rawReadLine(int fd, std::string &buf, std::string &line,
            int deadline_ms)
{
    auto start = std::chrono::steady_clock::now();
    for (;;) {
        std::size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            return true;
        }
        int waited = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
        if (waited >= deadline_ms)
            return false;
        pollfd p{fd, POLLIN, 0};
        int pr = ::poll(&p, 1, std::min(100, deadline_ms - waited));
        if (pr <= 0)
            continue;
        char tmp[4096];
        ssize_t n = ::recv(fd, tmp, sizeof(tmp), 0);
        if (n > 0)
            buf.append(tmp, static_cast<std::size_t>(n));
        else if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                            errno != EINTR))
            return false;
    }
}

/** Whole-line JSON parse — the no-torn-responses gate. */
bool
parseWhole(const std::string &line, wire::JsonValue &doc)
{
    wire::JsonParser p(line);
    return p.parseWhole(doc) &&
           doc.kind == wire::JsonValue::Kind::Object;
}

constexpr int rawDeadlineMs = 30'000;

// ---------------------------------------------------------------
// The chaos behaviors. Each returns through Failures; absence of a
// recorded failure IS the assertion.

/** Well-behaved single run through the client library; response must
 *  be ok and carry the reference record for its cell. */
void
doCleanRun(const std::string &addr, std::size_t cell,
           const std::vector<std::string> &expected,
           std::uint64_t seed, Failures &fails)
{
    client::ClientConfig cfg;
    cfg.address = addr;
    cfg.requestDeadlineMs = rawDeadlineMs;
    cfg.maxAttempts = 10;
    cfg.backoffSeed = seed;
    client::ServeClient cli(cfg);
    ExperimentSpec spec = gridSpec(cell);
    std::ostringstream os;
    os << "{\"op\":\"run\",\"app\":\"worker\",\"nodes\":" << gridNodes
       << ",\"victim\":6,\"protocol\":\""
       << gridProtocols[cell / 6] << "\",\"seed\":" << spec.seed
       << ",\"canonical\":true}";
    client::Response r = cli.rpcRetry(os.str());
    if (!r.ok) {
        fails.add("clean run failed (" + r.errorKind + "): " +
                  r.error);
        return;
    }
    const std::string key = "\"record\":";
    std::size_t at = r.line.find(key);
    if (at == std::string::npos || r.line.back() != '}') {
        fails.add("clean run: malformed response");
        return;
    }
    std::string rec = r.line.substr(at + key.size(),
                                    r.line.size() - 1 -
                                        (at + key.size()));
    if (rec != expected[cell])
        fails.add("clean run: record bytes differ from direct run");
}

/** Torn write: half the request, a pause mid-token, then the rest.
 *  A correct server sees one whole line; the response must be ok. */
void
doTornWrite(const std::string &path, std::size_t cell,
            Failures &fails)
{
    int fd = rawConnectUnix(path);
    if (fd < 0) {
        fails.add("torn write: connect failed");
        return;
    }
    std::ostringstream os;
    os << "{\"op\":\"run\",\"app\":\"worker\",\"nodes\":" << gridNodes
       << ",\"victim\":6,\"protocol\":\"" << gridProtocols[cell / 6]
       << "\",\"seed\":" << gridSeeds[cell % 6]
       << ",\"canonical\":true}\n";
    std::string req = os.str();
    std::size_t half = req.size() / 2;
    bool sent = rawSend(fd, req.substr(0, half));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sent = sent && rawSend(fd, req.substr(half));
    std::string buf, line;
    wire::JsonValue doc;
    if (!sent || !rawReadLine(fd, buf, line, rawDeadlineMs)) {
        fails.add("torn write: no response");
    } else if (!parseWhole(line, doc)) {
        fails.add("torn write: torn response: " + line.substr(0, 80));
    } else if (doc.find("record") == nullptr) {
        // Shedding is a legal answer under the storm; anything else
        // non-record means the torn frame confused the server.
        const wire::JsonValue *ek = doc.find("error_kind");
        if (ek == nullptr || ek->raw != "busy")
            fails.add("torn write: response is not a record: " +
                      line.substr(0, 80));
    }
    ::close(fd);
}

/** Half a line, then a disappearing client. The server must just
 *  drop the connection — verified globally by the server staying
 *  responsive for every later behavior. */
void
doAbandonedHalfLine(const std::string &path, Failures &fails)
{
    int fd = rawConnectUnix(path);
    if (fd < 0) {
        fails.add("abandoned half-line: connect failed");
        return;
    }
    rawSend(fd, "{\"op\":\"run\",\"app\":\"wor");
    ::close(fd);
}

/** Garbage then a valid request on the same connection: the garbage
 *  earns a structured parse error, the valid request still runs. */
void
doGarbageThenValid(const std::string &path, Failures &fails)
{
    int fd = rawConnectUnix(path);
    if (fd < 0) {
        fails.add("garbage: connect failed");
        return;
    }
    rawSend(fd, "this is not json\n");
    std::string buf, line;
    wire::JsonValue doc;
    if (!rawReadLine(fd, buf, line, rawDeadlineMs) ||
        !parseWhole(line, doc)) {
        fails.add("garbage: no structured error response");
        ::close(fd);
        return;
    }
    const wire::JsonValue *k = doc.find("error_kind");
    if (k == nullptr || k->raw != "parse")
        fails.add("garbage: expected error_kind parse, got: " +
                  line.substr(0, 80));
    std::ostringstream os;
    os << "{\"op\":\"run\",\"app\":\"worker\",\"nodes\":" << gridNodes
       << ",\"victim\":6,\"protocol\":\"h2\",\"seed\":1,"
          "\"canonical\":true}\n";
    // The valid request can legitimately be shed while the storm has
    // the admission queue full; honoring the busy hint (bounded) is
    // exactly what the protocol prescribes.
    for (int attempt = 0; attempt < 20; ++attempt) {
        if (!rawSend(fd, os.str()) ||
            !rawReadLine(fd, buf, line, rawDeadlineMs) ||
            !parseWhole(line, doc)) {
            fails.add("garbage: valid request after garbage failed: " +
                      line.substr(0, 120));
            break;
        }
        if (doc.find("record") != nullptr)
            break;   // served
        const wire::JsonValue *ek = doc.find("error_kind");
        if (ek == nullptr || ek->raw != "busy") {
            fails.add("garbage: valid request after garbage failed: " +
                      line.substr(0, 120));
            break;
        }
        std::uint64_t hint = 100;
        if (const wire::JsonValue *ra = doc.find("retry_after_ms"))
            wire::numberAsU64(*ra, hint);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min<std::uint64_t>(hint,
                                                              1000)));
    }
    ::close(fd);
}

/** Start a sweep, read a couple of cells, then slam the connection
 *  shut with an RST (SO_LINGER 0). The server must survive and keep
 *  serving everyone else; the orphaned cells just warm the cache. */
void
doResetMidSweep(const std::string &path, Failures &fails)
{
    int fd = rawConnectUnix(path);
    if (fd < 0) {
        fails.add("reset mid-sweep: connect failed");
        return;
    }
    rawSend(fd, gridSweepRequest() + "\n");
    std::string buf, line;
    wire::JsonValue doc;
    for (int i = 0; i < 2; ++i) {
        if (!rawReadLine(fd, buf, line, rawDeadlineMs)) {
            fails.add("reset mid-sweep: no cell before reset");
            break;
        }
        if (!parseWhole(line, doc)) {
            fails.add("reset mid-sweep: torn response: " +
                      line.substr(0, 120));
            break;
        }
    }
    linger lg{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);
}

/** A peer that requests work and never reads. The send timeout must
 *  declare it dead; the pool must keep flowing for everyone else.
 *  (Also exercises pending>0 suppressing the idle timeout.) */
void
doStalledPeer(const std::string &path, Failures &fails)
{
    int fd = rawConnectUnix(path);
    if (fd < 0) {
        fails.add("stalled peer: connect failed");
        return;
    }
    // Shrink our receive buffer so the server's sends actually stall
    // instead of parking politely in a roomy kernel buffer.
    int tiny = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
    for (int i = 0; i < 4; ++i)
        rawSend(fd, gridSweepRequest() + "\n");
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    ::close(fd);
}

/** Overload shedding, deterministically: one request whose chunk
 *  alone exceeds the server's admission bound must come back as a
 *  structured busy with a retry hint, whatever else is in flight. */
void
doBusyProbe(const std::string &path, std::uint64_t max_queue,
            Failures &fails)
{
    int fd = rawConnectUnix(path);
    if (fd < 0) {
        fails.add("busy probe: connect failed");
        return;
    }
    std::size_t cells = static_cast<std::size_t>(max_queue) + 8;
    std::ostringstream os;
    os << "{\"op\":\"sweep\",\"app\":\"worker\",\"nodes\":"
       << gridNodes << ",\"victim\":6,\"grid\":{\"seed\":[";
    for (std::size_t s = 0; s < cells; ++s)
        os << (s ? "," : "") << s + 1;
    os << "]},\"chunk\":" << cells << "}\n";
    std::string buf, line;
    wire::JsonValue doc;
    if (!rawSend(fd, os.str()) ||
        !rawReadLine(fd, buf, line, rawDeadlineMs) ||
        !parseWhole(line, doc)) {
        fails.add("busy probe: no response");
        ::close(fd);
        return;
    }
    const wire::JsonValue *k = doc.find("error_kind");
    if (k == nullptr || k->raw != "busy")
        fails.add("busy probe: expected error_kind busy, got: " +
                  line.substr(0, 80));
    else if (doc.find("retry_after_ms") == nullptr)
        fails.add("busy probe: busy without retry_after_ms");
    ::close(fd);
}

/** The tentpole gate: a chunked sweep whose client keeps seeded-
 *  randomly killing its own connection must still converge to the
 *  reference records, byte for byte, by resuming from the first
 *  missing cell. */
void
doChaosSweep(const std::string &addr, std::uint64_t seed,
             const std::vector<std::string> &expected,
             Failures &fails)
{
    client::ClientConfig cfg;
    cfg.address = addr;
    cfg.requestDeadlineMs = rawDeadlineMs;
    cfg.maxAttempts = 50;
    cfg.backoffBaseMs = 5;
    cfg.backoffMaxMs = 50;
    cfg.backoffSeed = seed;
    cfg.chunk = 3;
    cfg.chaosKillPerMille = 300;
    cfg.chaosSeed = seed;
    client::ServeClient cli(cfg);
    client::SweepResult res = cli.runSweep(gridSweepRequest());
    if (!res.ok) {
        fails.add("chaos sweep failed (" + res.errorKind + "): " +
                  res.error);
        return;
    }
    if (res.cells != gridCells) {
        fails.add("chaos sweep: wrong cell count");
        return;
    }
    for (std::size_t c = 0; c < gridCells; ++c) {
        if (res.records[c] != expected[c]) {
            fails.add("chaos sweep: cell " + std::to_string(c) +
                      " record bytes differ from direct run");
            return;
        }
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::size_t conns = 200;
    unsigned jobs = 4;
    std::uint64_t seed = 1;
    bool direct_only = false;
    if (const char *env = std::getenv("SWEX_SERVE_CONNS"))
        conns = static_cast<std::size_t>(std::strtoull(env, nullptr,
                                                       10));
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--conns")
            conns = static_cast<std::size_t>(
                std::strtoull(next(), nullptr, 10));
        else if (a == "--jobs")
            jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        else if (a == "--seed")
            seed = std::strtoull(next(), nullptr, 10);
        else if (a == "--direct")
            direct_only = true;
        else {
            std::fprintf(stderr,
                         "usage: stress_serve [--conns N] [--jobs N] "
                         "[--seed N] [--direct]\n");
            return a == "--help" ? 0 : 2;
        }
    }
    setQuiet(true);

    // The reference: every grid cell simulated in-process, canonical
    // bytes kept for per-cell comparison, digested for the
    // cross-mode determinism check.
    Runner direct(/*fail_fast=*/false);
    std::vector<std::string> expected;
    for (std::size_t c = 0; c < gridCells; ++c)
        expected.push_back(directRecord(direct, c));
    std::uint64_t direct_digest = digestRecords(expected);

    if (direct_only) {
        std::printf("grid digest %016llx (direct, %zu cells)\n",
                    static_cast<unsigned long long>(direct_digest),
                    gridCells);
        return 0;
    }

    // One server under attack: both listener families, a cache (the
    // resume-idempotency mechanism), a small admission bound (so
    // shedding is reachable), short idle/send timeouts (so the
    // stalled/quiet behaviors resolve within the run).
    char scratch[] = "/tmp/swex_stress_serve_XXXXXX";
    if (::mkdtemp(scratch) == nullptr) {
        std::perror("mkdtemp");
        return 1;
    }
    const std::string dir = scratch;
    const std::string sock = dir + "/serve.sock";
    serve::ServeConfig scfg;
    scfg.socketPath = sock;
    scfg.tcpHostPort = "127.0.0.1:0";
    scfg.cacheDir = dir + "/cache";
    scfg.jobs = jobs;
    scfg.maxQueuedUnits = 64;
    scfg.idleTimeoutMs = 2000;
    scfg.sendTimeoutMs = 1000;
    std::atomic<int> tcp_port{0};
    scfg.tcpPortOut = &tcp_port;
    std::thread server([&scfg] {
        int rc = serve::serveLoop(scfg);
        if (rc != 0)
            std::fprintf(stderr, "serveLoop exited %d\n", rc);
    });
    // Ready when the Unix socket accepts.
    for (int i = 0; i < 500; ++i) {
        int fd = rawConnectUnix(sock);
        if (fd >= 0) {
            ::close(fd);
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::string tcp_addr =
        "127.0.0.1:" + std::to_string(tcp_port.load());

    Failures fails;
    const unsigned lanes = 12;
    std::vector<std::thread> pool;
    std::atomic<std::size_t> nextConn{0};
    for (unsigned t = 0; t < lanes; ++t) {
        pool.emplace_back([&] {
            for (;;) {
                std::size_t i = nextConn.fetch_add(1);
                if (i >= conns)
                    return;
                std::uint64_t s = mix64(seed ^ (i * 2654435761ull));
                // Alternate address families so both listeners see
                // every behavior the raw helpers support.
                const std::string &addr =
                    (i / 8) % 2 == 0 ? sock : tcp_addr;
                switch (i % 8) {
                  case 0:
                    doCleanRun(addr, s % gridCells, expected, s,
                               fails);
                    break;
                  case 1: doTornWrite(sock, s % gridCells, fails);
                    break;
                  case 2: doAbandonedHalfLine(sock, fails); break;
                  case 3: doGarbageThenValid(sock, fails); break;
                  case 4: doResetMidSweep(sock, fails); break;
                  case 5: doStalledPeer(sock, fails); break;
                  case 6: doBusyProbe(sock, scfg.maxQueuedUnits,
                                      fails);
                    break;
                  case 7: doChaosSweep(addr, s, expected, fails);
                    break;
                }
            }
        });
    }
    for (std::thread &t : pool)
        t.join();

    // The server survived the storm; the clean sweep that follows
    // must produce the reference bytes (and the digest the direct
    // mode prints).
    client::ClientConfig cfg;
    cfg.address = sock;
    cfg.requestDeadlineMs = rawDeadlineMs;
    cfg.maxAttempts = 10;
    cfg.backoffSeed = seed;
    cfg.chunk = 3;
    client::ServeClient cli(cfg);
    client::SweepResult fin = cli.runSweep(gridSweepRequest());
    std::uint64_t served_digest = 0;
    if (!fin.ok)
        fails.add("final clean sweep failed (" + fin.errorKind +
                  "): " + fin.error);
    else
        served_digest = digestRecords(fin.records);
    if (fin.ok && served_digest != direct_digest)
        fails.add("served digest differs from direct digest");

    // Shut the server down cleanly and reclaim the scratch dir.
    {
        client::ClientConfig scli;
        scli.address = sock;
        scli.requestDeadlineMs = rawDeadlineMs;
        client::ServeClient shut(scli);
        std::string err;
        if (shut.connect(&err))
            shut.rpc("{\"op\":\"shutdown\"}");
    }
    server.join();
    std::string cleanup = "rm -rf '" + dir + "'";
    if (std::system(cleanup.c_str()) != 0)
        std::fprintf(stderr, "warning: could not remove %s\n",
                     dir.c_str());

    std::printf("stress_serve: %zu connections, seed %llu\n", conns,
                static_cast<unsigned long long>(seed));
    std::printf("grid digest %016llx (served, %zu cells)\n",
                static_cast<unsigned long long>(served_digest),
                gridCells);
    unsigned nfail = fails.count.load();
    if (nfail != 0) {
        std::printf("FAILURES: %u\n", nfail);
        for (const std::string &m : fails.messages)
            std::printf("  %s\n", m.c_str());
        return 1;
    }
    std::printf("all behaviors clean: no hangs, no torn responses, "
                "resumed sweeps byte-identical\n");
    return 0;
}
