#!/bin/sh
# Determinism gate for the parallel sweep tier: the stress grid must
# produce a byte-identical digest at full host parallelism and at
# --jobs 1. Any cross-run state leakage (a shared PRNG, a stray
# global, a schedule-dependent merge) shows up here as a digest
# mismatch before it can corrupt a published figure.
#
# Usage:
#
#   tools/sweep_determinism.sh <path-to-stress_protocols> [args...]
#
# Extra args are forwarded to both runs (e.g. --drop 20 --dup 10 to
# gate the fault tier too). SWEX_DET_SEEDS overrides the seed count
# (default 200; the sanitizer legs use a smaller count because TSan
# slows the grid by an order of magnitude).
#
# A third leg re-runs the grid with --replay (every cell records its
# op streams, replays them on a fresh machine, and digests the replay
# run): the replayed digest must equal the direct one bit for bit,
# gating the record/replay fast path with the same precision as the
# --jobs gate. SWEX_DET_REPLAY=0 skips it.
#
# A fourth leg gates the snooping machine-model grid (--family snoop:
# 4 protocols x 2 bus disciplines over the sharing microbenchmarks)
# the same way: the digest must not depend on --jobs.
# SWEX_DET_SNOOP=0 skips it.
#
# A fifth leg gates the content-addressed result cache: the grid runs
# twice against one scratch cache directory — cold (every cell
# simulates and stores) and warm (every cell served from disk) — and
# both digests must equal the direct digest bit for bit. A cache that
# changes a published number is worse than no cache.
# SWEX_DET_CACHE=0 skips it.
#
# A sixth leg gates the sweep server: tools/stress_serve runs its
# fixed 12-cell grid once in-process (--direct) and once through the
# full chaos harness (torn writes, resets, shedding, kill-and-resume
# sweeps over Unix and TCP sockets), and the two digests must match
# bit for bit — serving, chunked resume, and the result cache must
# never change a record byte. SWEX_DET_SERVE=0 skips it; the leg also
# skips itself if stress_serve is not built next to stress_protocols.
set -eu

if [ "$#" -lt 1 ]; then
    echo "usage: $0 <stress_protocols binary> [extra args...]" >&2
    exit 2
fi
stress=$1
shift

seeds=${SWEX_DET_SEEDS:-200}
jobs=$(nproc 2>/dev/null || echo 4)

extract_digest() {
    # "grid digest 43ab1be3aa392289 (360 runs, --jobs 8, 1.23s)"
    # -> the digest alone: runs/jobs/wall-clock legitimately differ.
    sed -n 's/^grid digest \([0-9a-f]*\) .*/\1/p'
}

echo "== sweep determinism: ${seeds} seeds, --jobs ${jobs} vs --jobs 1"

par=$("${stress}" --app worker --seeds "${seeds}" --jobs "${jobs}" \
      "$@" | extract_digest)
ser=$("${stress}" --app worker --seeds "${seeds}" --jobs 1 \
      "$@" | extract_digest)

if [ -z "${par}" ] || [ -z "${ser}" ]; then
    echo "error: no grid digest line in stress_protocols output" >&2
    exit 1
fi

echo "   --jobs ${jobs}: ${par}"
echo "   --jobs 1: ${ser}"

if [ "${par}" != "${ser}" ]; then
    echo "FAIL: grid digest depends on --jobs (${par} != ${ser})" >&2
    exit 1
fi
echo "OK: digests identical"

if [ "${SWEX_DET_REPLAY:-1}" != "0" ]; then
    echo "== replay equivalence: --replay vs direct"
    rep=$("${stress}" --app worker --seeds "${seeds}" \
          --jobs "${jobs}" --replay "$@" | extract_digest)
    if [ -z "${rep}" ]; then
        echo "error: no grid digest line in --replay output" >&2
        exit 1
    fi
    echo "   --replay: ${rep}"
    if [ "${rep}" != "${par}" ]; then
        echo "FAIL: replayed grid digest differs from direct" \
             "(${rep} != ${par})" >&2
        exit 1
    fi
    echo "OK: replayed digest identical"
fi

if [ "${SWEX_DET_SNOOP:-1}" != "0" ]; then
    echo "== snoop grid determinism: --jobs ${jobs} vs --jobs 1"
    spar=$("${stress}" --family snoop --seeds "${seeds}" \
           --jobs "${jobs}" | extract_digest)
    sser=$("${stress}" --family snoop --seeds "${seeds}" --jobs 1 \
           | extract_digest)
    if [ -z "${spar}" ] || [ -z "${sser}" ]; then
        echo "error: no grid digest line in --family snoop output" >&2
        exit 1
    fi
    echo "   --jobs ${jobs}: ${spar}"
    echo "   --jobs 1: ${sser}"
    if [ "${spar}" != "${sser}" ]; then
        echo "FAIL: snoop grid digest depends on --jobs" \
             "(${spar} != ${sser})" >&2
        exit 1
    fi
    echo "OK: snoop digests identical"
fi

if [ "${SWEX_DET_CACHE:-1}" != "0" ]; then
    echo "== cache equivalence: cold store, then warm re-sweep"
    cache_dir=$(mktemp -d)
    trap 'rm -rf "${cache_dir}"' EXIT
    cold=$("${stress}" --app worker --seeds "${seeds}" \
           --jobs "${jobs}" --cache "${cache_dir}" "$@" \
           | extract_digest)
    warm=$("${stress}" --app worker --seeds "${seeds}" \
           --jobs "${jobs}" --cache "${cache_dir}" "$@" \
           | extract_digest)
    if [ -z "${cold}" ] || [ -z "${warm}" ]; then
        echo "error: no grid digest line in --cache output" >&2
        exit 1
    fi
    echo "   cold: ${cold}"
    echo "   warm: ${warm}"
    if [ "${cold}" != "${par}" ] || [ "${warm}" != "${par}" ]; then
        echo "FAIL: cached grid digest differs from direct" \
             "(cold ${cold}, warm ${warm}, direct ${par})" >&2
        exit 1
    fi
    echo "OK: cold and warm cached digests identical to direct"
fi

serve_bin=$(dirname "${stress}")/stress_serve
if [ "${SWEX_DET_SERVE:-1}" != "0" ] && [ -x "${serve_bin}" ]; then
    echo "== serve equivalence: chaos-served grid vs direct"
    sdir=$("${serve_bin}" --direct | extract_digest)
    ssrv=$("${serve_bin}" --conns 24 | extract_digest)
    if [ -z "${sdir}" ] || [ -z "${ssrv}" ]; then
        echo "error: no grid digest line in stress_serve output" >&2
        exit 1
    fi
    echo "   direct: ${sdir}"
    echo "   served: ${ssrv}"
    if [ "${ssrv}" != "${sdir}" ]; then
        echo "FAIL: chaos-served grid digest differs from direct" \
             "(${ssrv} != ${sdir})" >&2
        exit 1
    fi
    echo "OK: served digest identical to direct"
fi
