/**
 * @file
 * swex_cli: command-line experiment driver. Runs any registered
 * workload on any protocol/machine configuration through the
 * experiment layer and reports run time, speedup, and memory-system
 * statistics -- the repository's equivalent of driving NWO by hand.
 *
 * Usage examples:
 *   swex_cli --app worker --nodes 16 --protocol h5 --wss 8
 *   swex_cli --app water --nodes 64 --protocol h1lack --victim 6
 *   swex_cli --app tsp --nodes 64 --protocol h0 --stats
 *   swex_cli --app smgrid --param fine=65 --seq
 *   swex_cli --app mp3d --json out.json
 *   swex_cli --app worker --sweep --seeds 20 --jitter 37 --jobs 8
 *   swex_cli --list
 */

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "core/spectrum.hh"
#include "exp/cache/result_cache.hh"
#include "exp/client.hh"
#include "exp/runner.hh"
#include "exp/serve.hh"
#include "exp/wire_json.hh"

using namespace swex;

namespace
{

/**
 * Malformed numeric option values ("16x", "", "99999999999999999999",
 * "-3" where a count is expected) must produce a usage error and exit
 * code 2, not an uncaught std::invalid_argument from bare std::stoi.
 */
[[noreturn]] void
badValue(const std::string &opt, const std::string &value,
         const char *why)
{
    std::fprintf(stderr, "swex_cli: bad value '%s' for %s: %s\n",
                 value.c_str(), opt.c_str(), why);
    std::fprintf(stderr, "run 'swex_cli --help' for usage\n");
    std::exit(2);
}

/** Parse a whole string as a bounded non-negative integer. */
int
parseCount(const std::string &opt, const std::string &value, int lo,
           int hi)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        badValue(opt, value, "not an integer");
    if (errno == ERANGE || v < lo || v > hi) {
        badValue(opt, value,
                 strfmt("must be in [%d, %d]", lo, hi).c_str());
    }
    return static_cast<int>(v);
}

/** Parse a whole string as an unsigned 64-bit integer. */
std::uint64_t
parseU64(const std::string &opt, const std::string &value)
{
    if (!value.empty() && value[0] == '-')
        badValue(opt, value, "must be non-negative");
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        badValue(opt, value, "not an integer");
    if (errno == ERANGE)
        badValue(opt, value, "out of range");
    return static_cast<std::uint64_t>(v);
}

void
usage()
{
    std::printf(
        "swex_cli -- software-extended shared memory experiment "
        "driver\n\n"
        "  --app <name>       worker|tsp|aq|smgrid|evolve|mp3d|water\n"
        "  --nodes <n>        machine size (default 16, max 256)\n"
        "  --protocol <p>     h0|h1ack|h1lack|h1|h2|h3|h4|h5|dir1sw|"
        "full (default h5);\n"
        "                     mesi|moesi|mesif|dragon select the\n"
        "                     snooping-bus machine model instead of\n"
        "                     the directory spectrum\n"
        "  --bus <a>          fifo|rr bus arbitration (snooping "
        "machine\n"
        "                     model only; default fifo)\n"
        "  --profile <p>      c|asm handler cost profile (default c)\n"
        "  --victim <n>       victim cache entries (default 6)\n"
        "  --param <k=v>      app parameter (repeatable; see --list)\n"
        "  --wss <n>          WORKER worker-set size (= --param wss=n)\n"
        "  --iters <n>        WORKER iterations (= --param "
        "iterations=n)\n"
        "  --seed <n>         machine RNG seed (default 12345)\n"
        "  --audit            attach the coherence invariant auditor\n"
        "  --jitter <c>       network jitter stressor: up to c extra\n"
        "                     cycles of delivery delay per message\n"
        "  --jitter-seed <n>  seed the jitter stream separately from\n"
        "                     the machine seed (stress replay lines\n"
        "                     use this; 0 = reuse --seed)\n"
        "  --faults <d[,u[,b]]>  adversarial fault injection: drop,\n"
        "                     duplicate, blackout rates in per mille\n"
        "                     per wire transmission; the recoverable\n"
        "                     delivery layer hides the faults from the\n"
        "                     protocol (0,0,0 = off, clean path exact)\n"
        "  --fault-seed <n>   seed the fault stream separately from\n"
        "                     --seed (0 = reuse --seed)\n"
        "  --deadline <c>     per-run simulated-cycle budget; a run\n"
        "                     that exceeds it is recorded as a\n"
        "                     structured failure instead of aborting\n"
        "                     (default 50000000 when --faults is on)\n"
        "  --sweep            run the whole protocol spectrum instead\n"
        "                     of one --protocol (grid: spectrum x\n"
        "                     --seeds jitter seeds)\n"
        "  --seeds <n>        jitter seeds per spectrum point in\n"
        "                     --sweep (default 1, first = "
        "--jitter-seed)\n"
        "  --jobs <n>         concurrent --sweep runs on host threads\n"
        "                     (default 1; records are identical at\n"
        "                     any value)\n"
        "  --perfect-ifetch   one-cycle instruction fetch\n"
        "  --no-local-bit     disable the one-bit local pointer\n"
        "  --parallel-inv     Section 7 parallel invalidation\n"
        "  --record           capture the run's op streams into the\n"
        "                     trace cache (--trace-dir or\n"
        "                     $SWEX_TRACE_CACHE) for later --replay\n"
        "  --replay           drive the machine from a recorded trace\n"
        "                     instead of executing the app (identical\n"
        "                     cycle counts, much faster); with --sweep,\n"
        "                     records each portable trace once and\n"
        "                     replays every cell from it\n"
        "  --trace-dir <path> trace cache directory (default\n"
        "                     $SWEX_TRACE_CACHE)\n"
        "  --cache-dir <path> content-addressed result cache: warm\n"
        "                     cells are served from disk instead of\n"
        "                     simulated, and finished direct runs are\n"
        "                     stored back (default $SWEX_RESULT_CACHE;\n"
        "                     records are byte-identical either way)\n"
        "  --cache-max-bytes <n>   bound the result cache (0 =\n"
        "                     unbounded): stores evict least-recently-\n"
        "                     used entries by mtime until it fits\n"
        "  --cache-max-entries <n> same bound, counted in entries\n"
        "  --serve <socket>   serve experiments over a Unix socket\n"
        "                     speaking line-delimited JSON: cache hits\n"
        "                     answer immediately, misses run on --jobs\n"
        "                     workers and stream back as they land;\n"
        "                     concurrent clients share the pool\n"
        "                     (ops: run, sweep, stats, shutdown)\n"
        "  --serve-tcp <h:p>  also (or only) listen on TCP host:port\n"
        "                     (port 0 = ephemeral); combinable with\n"
        "                     --serve, same protocol on both\n"
        "  --serve-backlog <n> listen(2) backlog (default 64)\n"
        "  --serve-max-queue <n> admission bound in work units (runs +\n"
        "                     sweep cells); excess is shed with a\n"
        "                     structured busy error and retry_after_ms\n"
        "                     hint (default 4096, 0 = unbounded)\n"
        "  --serve-idle-ms <n> close connections idle this long with\n"
        "                     no outstanding work (default 0 = never)\n"
        "  --connect <addr>   run remotely against a server instead of\n"
        "                     simulating locally: a path is a Unix\n"
        "                     socket, host:port is TCP. Retries with\n"
        "                     seeded exponential backoff, honors busy\n"
        "                     hints, and resumes interrupted --sweep\n"
        "                     chunks from the first missing cell\n"
        "  --rpc-deadline <ms> per-response deadline for --connect\n"
        "                     (default 30000)\n"
        "  --rpc-attempts <n> retry budget for --connect (default 5;\n"
        "                     any received line resets it)\n"
        "  --chunk <n>        cells per --connect sweep chunk request\n"
        "                     (default 4096 = the server max)\n"
        "  --seq              also run the sequential reference and\n"
        "                     report speedup\n"
        "  --stats            dump the full statistics tree\n"
        "  --json <path>      write the run record(s) as a "
        "swex-run-v1 document\n"
        "  --list             list apps and protocols and exit\n");
}

/** Parse "--faults d[,u[,b]]" (per-mille rates) into @p spec. */
void
parseFaults(const std::string &value, ExperimentSpec &spec)
{
    unsigned rates[3] = {0, 0, 0};
    std::size_t pos = 0;
    for (int k = 0; k < 3 && pos <= value.size(); ++k) {
        std::size_t comma = value.find(',', pos);
        std::string part = value.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        rates[k] = static_cast<unsigned>(
            parseCount("--faults", part, 0, 1000));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    spec.faultDropPerMille = rates[0];
    spec.faultDupPerMille = rates[1];
    spec.faultBlackoutPerMille = rates[2];
}

/** The --protocol key that reproduces a spectrum label. */
std::string
cliProtoKey(const std::string &label)
{
    if (label == "H0-ACK") return "h0";
    if (label == "H1-ACK") return "h1ack";
    if (label == "H1-LACK") return "h1lack";
    if (label == "H1") return "h1";
    if (label == "DIR1SW") return "dir1sw";
    if (label == "FULLMAP") return "full";
    std::string key = label;
    for (char &c : key)
        c = static_cast<char>(std::tolower(
            static_cast<unsigned char>(c)));
    return key;   // H2..H5
}

/**
 * One self-contained command line that reproduces @p sp exactly:
 * every determinism-relevant knob is spelled out, so a failure line
 * pasted from a sweep replays the same simulation at any --jobs.
 */
std::string
replayLine(const ExperimentSpec &sp, const std::string &proto_key,
           bool local_bit_off)
{
    std::string s = strfmt("swex_cli --app %s --nodes %d --protocol "
                           "%s --victim %u --seed %llu",
                           sp.app.c_str(), sp.nodes, proto_key.c_str(),
                           sp.victimEntries,
                           static_cast<unsigned long long>(sp.seed));
    if (sp.profile == HandlerProfile::TunedAsm)
        s += " --profile asm";
    for (const auto &[k, v] : sp.params)
        s += strfmt(" --param %s=%s", k.c_str(), v.c_str());
    if (sp.jitterMax != 0) {
        s += strfmt(" --jitter %llu --jitter-seed %llu",
                    static_cast<unsigned long long>(sp.jitterMax),
                    static_cast<unsigned long long>(
                        sp.jitterSeed != 0 ? sp.jitterSeed : sp.seed));
    }
    if (sp.faultDropPerMille != 0 || sp.faultDupPerMille != 0 ||
        sp.faultBlackoutPerMille != 0) {
        s += strfmt(" --faults %u,%u,%u --fault-seed %llu",
                    sp.faultDropPerMille, sp.faultDupPerMille,
                    sp.faultBlackoutPerMille,
                    static_cast<unsigned long long>(
                        sp.faultSeed != 0 ? sp.faultSeed : sp.seed));
    }
    if (sp.deadline != 0)
        s += strfmt(" --deadline %llu",
                    static_cast<unsigned long long>(sp.deadline));
    if (sp.perfectIfetch)
        s += " --perfect-ifetch";
    if (local_bit_off)
        s += " --no-local-bit";
    if (sp.parallelInv)
        s += " --parallel-inv";
    if (sp.audit)
        s += " --audit";
    return s;
}

/** Snooping protocol names accepted by --protocol; false if @p s
 *  names a directory spectrum point instead. */
bool
parseSnoopProtocol(const std::string &s, SnoopProtocol &out)
{
    if (s == "mesi") { out = SnoopProtocol::Mesi; return true; }
    if (s == "moesi") { out = SnoopProtocol::Moesi; return true; }
    if (s == "mesif") { out = SnoopProtocol::Mesif; return true; }
    if (s == "dragon") { out = SnoopProtocol::Dragon; return true; }
    return false;
}

ProtocolConfig
parseProtocol(const std::string &s)
{
    if (s == "h0") return ProtocolConfig::h0();
    if (s == "h1ack") return ProtocolConfig::h1Ack();
    if (s == "h1lack") return ProtocolConfig::h1Lack();
    if (s == "h1") return ProtocolConfig::h1();
    if (s == "h2") return ProtocolConfig::hw(2);
    if (s == "h3") return ProtocolConfig::hw(3);
    if (s == "h4") return ProtocolConfig::hw(4);
    if (s == "h5") return ProtocolConfig::hw(5);
    if (s == "dir1sw") return ProtocolConfig::dir1sw();
    if (s == "full") return ProtocolConfig::fullMap();
    fatal("unknown protocol '%s' (try --list)", s.c_str());
}

void
listEverything()
{
    std::printf("applications:\n");
    std::printf("  %-10s %-9s %-16s %s\n", "name", "portable",
                "machine models", "summary");
    for (const std::string &name : AppRegistry::instance().names()) {
        const auto &e = AppRegistry::instance().entry(name);
        std::printf("  %-10s %-9s %-16s %s\n", name.c_str(),
                    e.tracePortable ? "yes" : "no",
                    e.machineModels.c_str(), e.summary.c_str());
    }
    std::printf("\ndirectory protocols (--protocol):\n");
    for (const auto &pt : protocolSpectrum())
        std::printf("  %-10s %s\n", pt.label.c_str(),
                    pt.protocol.name().c_str());
    std::printf("\nsnooping protocols (--protocol, shared-bus "
                "machine model):\n");
    std::printf("  %-10s invalidate-based; E for private clean "
                "lines\n", "mesi");
    std::printf("  %-10s invalidate-based; O supplies dirty-shared "
                "data\n", "moesi");
    std::printf("  %-10s invalidate-based; F designates the clean "
                "forwarder\n", "mesif");
    std::printf("  %-10s update-based; shared writes broadcast the "
                "word\n", "dragon");
}

/** The handful of record fields the remote front end reports. */
struct RemoteRec
{
    std::uint64_t cycles = 0;
    bool verified = false;
    std::string status = "?";
};

bool
parseRemoteRecord(const std::string &record_json, RemoteRec &out)
{
    wire::JsonParser p(record_json);
    wire::JsonValue v;
    if (!p.parseWhole(v) || v.kind != wire::JsonValue::Kind::Object)
        return false;
    if (const wire::JsonValue *c = v.find("sim_cycles"))
        wire::numberAsU64(*c, out.cycles);
    if (const wire::JsonValue *ve = v.find("verified"))
        out.verified =
            ve->kind == wire::JsonValue::Kind::Bool && ve->boolean;
    if (const wire::JsonValue *s = v.find("status"))
        if (s->kind == wire::JsonValue::Kind::String)
            out.status = s->raw;
    return true;
}

/** The raw record-object bytes out of a response line (substring,
 *  not re-render, so --json writes exactly what the server sent). */
bool
extractRecord(const std::string &line, std::string &out)
{
    const std::string key = "\"record\":";
    std::size_t at = line.find(key);
    if (at == std::string::npos || line.empty() || line.back() != '}')
        return false;
    out = line.substr(at + key.size(),
                      line.size() - 1 - (at + key.size()));
    return true;
}

/** Wrap remotely-fetched records in the swex-run-v1 envelope. */
bool
writeRemoteJson(const std::string &path,
                const std::vector<std::string> &records)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fprintf(f, "{\"schema\":\"swex-run-v1\",\"records\":[\n");
    for (std::size_t i = 0; i < records.size(); ++i)
        std::fprintf(f, "%s%s\n", records[i].c_str(),
                     i + 1 < records.size() ? "," : "");
    std::fprintf(f, "]}\n");
    bool ok = std::fclose(f) == 0;
    return ok;
}

/** A swex-run-v1 record for a remote request that never produced
 *  one: status "error" plus the structured error_kind (the server's
 *  taxonomy, or the client-local "transport"/"deadline"), so
 *  tools/triage_failures.py can cluster serve-side failures next to
 *  simulator stalls. */
std::string
remoteFailureRecord(const ExperimentSpec &spec,
                    const std::string &proto, const std::string &error,
                    const std::string &kind)
{
    std::string r = "{\"id\":\"" + wire::jsonEscape(spec.id) + "\"";
    r += ",\"app\":\"" + wire::jsonEscape(spec.app) + "\"";
    r += ",\"protocol\":\"" + wire::jsonEscape(proto) + "\"";
    r += ",\"nodes\":" + std::to_string(spec.nodes);
    r += ",\"status\":\"error\"";
    r += ",\"error\":\"" + wire::jsonEscape(error) + "\"";
    r += ",\"error_kind\":\"" +
         wire::jsonEscape(kind.empty() ? "transport" : kind) + "\"}";
    return r;
}

/**
 * Build the shared part of a remote request from the CLI options.
 * Returns the object *without* its closing brace so the caller can
 * splice op-specific fields (grid, jitter_seed). canonical:true keeps
 * the returned records deterministic (host wall time zeroed), so
 * remote output is byte-comparable across runs and servers.
 */
std::string
remoteRequest(const char *op, const ExperimentSpec &spec,
              const std::string &proto, const std::string &bus,
              bool include_protocol)
{
    std::string r = std::string("{\"op\":\"") + op + "\"";
    r += ",\"app\":\"" + wire::jsonEscape(spec.app) + "\"";
    r += ",\"nodes\":" + std::to_string(spec.nodes);
    if (include_protocol)
        r += ",\"protocol\":\"" + wire::jsonEscape(proto) + "\"";
    if (!bus.empty())
        r += ",\"bus\":\"" + wire::jsonEscape(bus) + "\"";
    if (spec.profile == HandlerProfile::TunedAsm)
        r += ",\"profile\":\"asm\"";
    r += ",\"victim\":" + std::to_string(spec.victimEntries);
    r += ",\"seed\":" + std::to_string(spec.seed);
    if (!spec.params.empty()) {
        r += ",\"params\":{";
        bool first = true;
        for (const auto &[k, v] : spec.params) {
            if (!first)
                r += ",";
            first = false;
            r += "\"" + wire::jsonEscape(k) + "\":\"" +
                 wire::jsonEscape(v) + "\"";
        }
        r += "}";
    }
    if (spec.audit)
        r += ",\"audit\":true";
    if (spec.jitterMax != 0)
        r += ",\"jitter\":" +
             std::to_string(static_cast<unsigned long long>(
                 spec.jitterMax));
    if (spec.faultDropPerMille != 0)
        r += ",\"fault_drop\":" +
             std::to_string(spec.faultDropPerMille);
    if (spec.faultDupPerMille != 0)
        r += ",\"fault_dup\":" + std::to_string(spec.faultDupPerMille);
    if (spec.faultBlackoutPerMille != 0)
        r += ",\"fault_blackout\":" +
             std::to_string(spec.faultBlackoutPerMille);
    if (spec.faultSeed != 0)
        r += ",\"fault_seed\":" + std::to_string(spec.faultSeed);
    if (spec.deadline != 0)
        r += ",\"deadline\":" +
             std::to_string(static_cast<unsigned long long>(
                 spec.deadline));
    r += ",\"canonical\":true";
    return r;
}

/**
 * The --connect front end: the same option surface, executed by a
 * server instead of the local simulator. Knobs that only the local
 * machine honors (trace record/replay, --seq, --stats, structural
 * protocol edits) are usage errors, not silent no-ops.
 */
int
remoteMain(const std::string &addr, const ExperimentSpec &spec,
           const std::string &proto, const std::string &bus,
           bool want_sweep, int sweep_seeds, bool record_replay,
           bool seq_stats, bool local_bit_off,
           const std::string &json_path, int deadline_ms,
           int attempts, int chunk_cells)
{
    auto usageError = [](const std::string &msg) {
        std::fprintf(stderr, "swex_cli: %s\n", msg.c_str());
        std::fprintf(stderr, "run 'swex_cli --help' for usage\n");
        std::exit(2);
    };
    if (record_replay)
        usageError("--record/--replay drive the local trace cache; "
                   "drop them for --connect");
    if (seq_stats)
        usageError("--seq and --stats need the local simulator; drop "
                   "them for --connect");
    if (local_bit_off || spec.perfectIfetch || spec.parallelInv)
        usageError("--no-local-bit/--perfect-ifetch/--parallel-inv "
                   "are not in the serve protocol; run locally");

    client::ClientConfig ccfg;
    ccfg.address = addr;
    ccfg.requestDeadlineMs = deadline_ms;
    ccfg.maxAttempts = static_cast<unsigned>(attempts);
    ccfg.backoffSeed = spec.seed;
    ccfg.chunk = static_cast<std::size_t>(chunk_cells);
    client::ServeClient cli(ccfg);

    if (!want_sweep) {
        std::string req = remoteRequest("run", spec, proto, bus,
                                        /*include_protocol=*/true);
        if (spec.jitterSeed != 0)
            req += ",\"jitter_seed\":" +
                   std::to_string(spec.jitterSeed);
        req += "}";
        client::Response resp = cli.rpcRetry(req);
        if (!resp.ok) {
            std::fprintf(stderr,
                         "swex_cli: remote run failed (%s): %s\n",
                         resp.errorKind.c_str(), resp.error.c_str());
            if (!json_path.empty())
                writeRemoteJson(json_path,
                                {remoteFailureRecord(spec, proto,
                                                     resp.error,
                                                     resp.errorKind)});
            return 1;
        }
        std::string record;
        RemoteRec rec;
        if (!extractRecord(resp.line, record) ||
            !parseRemoteRecord(record, rec)) {
            std::fprintf(stderr,
                         "swex_cli: malformed remote response\n");
            return 1;
        }
        std::string source = "?";
        if (const wire::JsonValue *s = resp.doc.find("source"))
            if (s->kind == wire::JsonValue::Kind::String)
                source = s->raw;
        std::printf("remote run via %s: source=%s\n", addr.c_str(),
                    source.c_str());
        std::printf("run time: %llu cycles (%.3f s at 33 MHz)\n",
                    static_cast<unsigned long long>(rec.cycles),
                    static_cast<double>(rec.cycles) / 33.0e6);
        if (rec.status != "ok")
            std::printf("status: %s\n", rec.status.c_str());
        else
            std::printf("verification: %s\n",
                        rec.verified ? "PASSED" : "FAILED");
        bool json_ok = true;
        if (!json_path.empty()) {
            json_ok = writeRemoteJson(json_path, {record});
            if (!json_ok)
                std::fprintf(stderr, "error: could not write %s\n",
                             json_path.c_str());
        }
        return rec.status == "ok" && rec.verified && json_ok ? 0 : 1;
    }

    SnoopProtocol sp{};
    if (parseSnoopProtocol(proto, sp))
        usageError("--sweep walks the directory protocol spectrum; "
                   "snooping protocols have no remote sweep grid");
    // Same grid the local sweep runs: spectrum x jitter seeds,
    // expressed as a server-side sweep so warm cells never leave the
    // server's cache and resumes survive connection loss.
    std::uint64_t seed0 =
        spec.jitterSeed != 0 ? spec.jitterSeed : spec.seed;
    std::string base = remoteRequest("sweep", spec, proto, bus,
                                     /*include_protocol=*/false);
    base += ",\"grid\":{\"protocol\":[";
    {
        bool first = true;
        for (const auto &pt : protocolSpectrum()) {
            if (!first)
                base += ",";
            first = false;
            base += "\"" + cliProtoKey(pt.label) + "\"";
        }
    }
    base += "],\"jitter_seed\":[";
    for (int s = 0; s < sweep_seeds; ++s) {
        if (s != 0)
            base += ",";
        base += std::to_string(seed0 + static_cast<std::uint64_t>(s));
    }
    base += "]}}";

    std::printf("remote sweep via %s: app=%s nodes=%d victim=%u "
                "(%zu points x %d seeds, chunk %d)\n",
                addr.c_str(), spec.app.c_str(), spec.nodes,
                spec.victimEntries, protocolSpectrum().size(),
                sweep_seeds, chunk_cells);

    client::SweepResult res = cli.runSweep(base);
    if (!res.ok) {
        std::fprintf(stderr,
                     "swex_cli: remote sweep failed (%s): %s\n",
                     res.errorKind.c_str(), res.error.c_str());
        if (!json_path.empty())
            writeRemoteJson(json_path,
                            {remoteFailureRecord(spec, proto,
                                                 res.error,
                                                 res.errorKind)});
        return 1;
    }

    bool all_ok = true;
    std::size_t i = 0;
    for (const auto &pt : protocolSpectrum()) {
        int ok = 0;
        RemoteRec first;
        for (int s = 0; s < sweep_seeds && i < res.records.size();
             ++s, ++i) {
            RemoteRec rec;
            if (parseRemoteRecord(res.records[i], rec) &&
                rec.status == "ok" && rec.verified) {
                ++ok;
            } else {
                all_ok = false;
            }
            if (s == 0)
                parseRemoteRecord(res.records[i], first);
        }
        std::printf("  %-10s %3d/%d ok  s0: %llu cycles\n",
                    pt.label.c_str(), ok, sweep_seeds,
                    static_cast<unsigned long long>(first.cycles));
    }
    if (res.reconnects != 0 || res.duplicates != 0)
        std::printf("  (resumed: %u reconnects, %u duplicate "
                    "cells)\n", res.reconnects, res.duplicates);

    bool json_ok = true;
    if (!json_path.empty()) {
        json_ok = writeRemoteJson(json_path, res.records);
        if (!json_ok)
            std::fprintf(stderr, "error: could not write %s\n",
                         json_path.c_str());
    }
    return all_ok && json_ok ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    ExperimentSpec spec;
    spec.id = "cli";
    spec.nodes = 16;
    spec.victimEntries = 6;
    std::string proto = "h5";
    std::string bus;
    bool local_bit_off = false;
    bool want_record = false;
    bool want_replay = false;
    bool want_seq = false;
    bool want_stats = false;
    bool want_sweep = false;
    int sweep_seeds = 1;
    unsigned jobs = 1;
    std::string json_path;
    std::string cache_dir;
    std::uint64_t cache_max_bytes = 0;
    std::uint64_t cache_max_entries = 0;
    std::string serve_socket;
    std::string serve_tcp;
    int serve_backlog = 64;
    std::uint64_t serve_max_queue = 4096;
    int serve_idle_ms = 0;
    std::string connect_addr;
    int rpc_deadline_ms = 30'000;
    int rpc_attempts = 5;
    int chunk_cells = 4096;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--app") spec.app = next();
        else if (a == "--nodes")
            spec.nodes = parseCount(a, next(), 1, maxNodes);
        else if (a == "--protocol") proto = next();
        else if (a == "--bus") bus = next();
        else if (a == "--profile")
            spec.profile = next() == "asm" ? HandlerProfile::TunedAsm
                                           : HandlerProfile::FlexibleC;
        else if (a == "--victim")
            spec.victimEntries = static_cast<unsigned>(
                parseCount(a, next(), 0, 4096));
        else if (a == "--param") {
            std::string kv = next();
            std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0)
                fatal("--param wants key=value, got '%s'", kv.c_str());
            spec.params[kv.substr(0, eq)] = kv.substr(eq + 1);
        }
        else if (a == "--wss") spec.params["wss"] = next();
        else if (a == "--iters") spec.params["iterations"] = next();
        else if (a == "--seed")
            spec.seed = parseU64(a, next());
        else if (a == "--audit") spec.audit = true;
        else if (a == "--jitter")
            spec.jitterMax = static_cast<Cycles>(
                parseCount(a, next(), 0, 1 << 20));
        else if (a == "--jitter-seed")
            spec.jitterSeed = parseU64(a, next());
        else if (a == "--faults") parseFaults(next(), spec);
        else if (a == "--fault-seed")
            spec.faultSeed = parseU64(a, next());
        else if (a == "--deadline")
            spec.deadline = static_cast<Tick>(parseU64(a, next()));
        else if (a == "--record") want_record = true;
        else if (a == "--replay") want_replay = true;
        else if (a == "--trace-dir") spec.traceDir = next();
        else if (a == "--cache-dir") cache_dir = next();
        else if (a == "--cache-max-bytes")
            cache_max_bytes = parseU64(a, next());
        else if (a == "--cache-max-entries")
            cache_max_entries = parseU64(a, next());
        else if (a == "--serve") serve_socket = next();
        else if (a == "--serve-tcp") serve_tcp = next();
        else if (a == "--serve-backlog")
            serve_backlog = parseCount(a, next(), 1, 65535);
        else if (a == "--serve-max-queue")
            serve_max_queue = parseU64(a, next());
        else if (a == "--serve-idle-ms")
            serve_idle_ms = parseCount(a, next(), 0, 86'400'000);
        else if (a == "--connect") connect_addr = next();
        else if (a == "--rpc-deadline")
            rpc_deadline_ms = parseCount(a, next(), 1, 86'400'000);
        else if (a == "--rpc-attempts")
            rpc_attempts = parseCount(a, next(), 1, 1000);
        else if (a == "--chunk")
            chunk_cells = parseCount(a, next(), 1, 4096);
        else if (a == "--sweep") want_sweep = true;
        else if (a == "--seeds")
            sweep_seeds = parseCount(a, next(), 1, 1'000'000);
        else if (a == "--jobs")
            jobs = static_cast<unsigned>(parseCount(a, next(), 1, 256));
        else if (a == "--perfect-ifetch") spec.perfectIfetch = true;
        else if (a == "--no-local-bit") local_bit_off = true;
        else if (a == "--parallel-inv") spec.parallelInv = true;
        else if (a == "--seq") want_seq = true;
        else if (a == "--stats") want_stats = true;
        else if (a == "--json") json_path = next();
        else if (a == "--list") {
            listEverything();
            return 0;
        } else {
            usage();
            return a == "--help" || a == "-h" ? 0 : 1;
        }
    }

    // --serve is its own front end: the spec comes per request over
    // the socket, so every other positional knob is ignored. Only
    // --jobs (worker pool size), the cache knobs, and the serve
    // robustness knobs travel with it.
    if (!serve_socket.empty() || !serve_tcp.empty()) {
        setQuiet(true);
        serve::ServeConfig scfg;
        scfg.socketPath = serve_socket;
        scfg.tcpHostPort = serve_tcp;
        scfg.cacheDir = cache::resolveCacheDir(cache_dir);
        scfg.jobs = jobs;
        scfg.cacheMaxBytes = cache_max_bytes;
        scfg.cacheMaxEntries = cache_max_entries;
        scfg.backlog = serve_backlog;
        scfg.maxQueuedUnits = serve_max_queue;
        scfg.idleTimeoutMs = serve_idle_ms;
        // The CLI owns the process, so SIGTERM means "drain and
        // exit 0" (embedders of serveLoop opt in explicitly).
        scfg.handleSignals = true;
        return serve::serveLoop(scfg);
    }

    if (!connect_addr.empty())
        return remoteMain(connect_addr, spec, proto, bus, want_sweep,
                          sweep_seeds, want_record || want_replay,
                          want_seq || want_stats, local_bit_off,
                          json_path, rpc_deadline_ms, rpc_attempts,
                          chunk_cells);

    SnoopProtocol snoop_proto{};
    const bool snoop = parseSnoopProtocol(proto, snoop_proto);
    if (snoop) {
        // Directory knobs (spec.protocol, victim cache, local bit)
        // stay at their defaults and are inert on the bus machine.
        spec.machineModel = MachineModel::Snoop;
        spec.snoopProtocol = snoop_proto;
    } else {
        spec.protocol = parseProtocol(proto);
        if (local_bit_off)
            spec.protocol.localBit = false;
    }
    if (!bus.empty()) {
        if (bus == "fifo")
            spec.busArbitration = BusArbitration::Fifo;
        else if (bus == "rr")
            spec.busArbitration = BusArbitration::RoundRobin;
        else
            badValue("--bus", bus, "expected fifo or rr");
    }
    if (!AppRegistry::instance().contains(spec.app))
        fatal("unknown app '%s' (try --list)", spec.app.c_str());

    // Record/replay plumbing. Misuse is a usage error (exit 2), per
    // the CLI convention for malformed invocations: the run never
    // starts, and the message says exactly how to fix the call.
    auto usageError = [](const std::string &msg) {
        std::fprintf(stderr, "swex_cli: %s\n", msg.c_str());
        std::fprintf(stderr, "run 'swex_cli --help' for usage\n");
        std::exit(2);
    };
    if (want_record && want_replay)
        usageError("--record and --replay are mutually exclusive");
    if (want_record)
        spec.execMode = ExecutionMode::Record;
    if (want_replay)
        spec.execMode = ExecutionMode::Replay;
    if (spec.execMode != ExecutionMode::Direct &&
        trace::resolveTraceDir(spec.traceDir).empty()) {
        usageError(std::string(want_record ? "--record" : "--replay") +
                   " needs a trace cache: pass --trace-dir or set "
                   "$SWEX_TRACE_CACHE");
    }
    if (want_replay && want_seq)
        usageError("--replay runs one recorded kernel; drop --seq "
                   "(record and replay the sequential reference via "
                   "--seq --record / a sequential spec instead)");
    const bool faults_on = spec.faultDropPerMille != 0 ||
                           spec.faultDupPerMille != 0 ||
                           spec.faultBlackoutPerMille != 0;
    // The snooping machine model carries coherence on a lossless
    // shared bus: there is no network to jitter or fault, and the
    // --sweep grid is the directory spectrum by definition.
    if (snoop && want_sweep) {
        usageError("--sweep walks the directory protocol spectrum; "
                   "sweep the snooping grid with 'stress_protocols "
                   "--family snoop' instead");
    }
    if (snoop && (spec.jitterMax != 0 || faults_on)) {
        usageError("the snooping bus models no interconnection "
                   "network; drop --jitter/--faults (directory "
                   "machine model only)");
    }
    if (!snoop && !bus.empty()) {
        usageError("--bus applies to the snooping machine model "
                   "only (pick --protocol mesi|moesi|mesif|dragon)");
    }
    // Fault injection can legitimately livelock a run (every
    // retransmission re-dropped); never run it without a deadline.
    if (faults_on && spec.deadline == 0)
        spec.deadline = 50'000'000;

    // After every config default is in force (the deadline is part of
    // the machine fingerprint): a --replay with no usable trace must
    // fail before the run starts, with the reason and the fix.
    if (want_replay && !want_sweep) {
        trace::Trace probe;
        std::string err = Runner::findReplayTrace(spec, probe);
        if (!err.empty()) {
            usageError("--replay: no usable recorded trace: " + err +
                       " (record one first with the same --app/--param/"
                       "--nodes and --record)");
        }
    }

    setQuiet(true);

    // The content-addressed result cache (tentpole of the sweep
    // tier): warm cells skip simulation, finished direct cells are
    // stored back. The emitted records are byte-identical with the
    // cache on, off, cold, or warm — it only changes how fast they
    // arrive.
    std::unique_ptr<cache::ResultCache> result_cache;
    {
        std::string cdir = cache::resolveCacheDir(cache_dir);
        if (!cdir.empty()) {
            cache::ResultCache::Budget budget;
            budget.maxBytes = cache_max_bytes;
            budget.maxEntries = cache_max_entries;
            result_cache = std::make_unique<cache::ResultCache>(
                cdir, cache::CodeVersions::current(), budget);
        }
    }

    if (want_sweep) {
        // Grid: every spectrum point x sweep_seeds jitter seeds, run
        // through Runner::runAll. Records land in the log in spec
        // order regardless of --jobs, so the summary, the emitted
        // swex-run-v1 document, and the exit code are identical at
        // any concurrency.
        std::uint64_t seed0 = spec.jitterSeed != 0 ? spec.jitterSeed
                                                   : spec.seed;
        std::uint64_t fseed0 = spec.faultSeed != 0 ? spec.faultSeed
                                                   : spec.seed;
        std::vector<ExperimentSpec> specs;
        for (const auto &pt : protocolSpectrum()) {
            for (int s = 0; s < sweep_seeds; ++s) {
                ExperimentSpec sp = spec;
                sp.protocol = pt.protocol;
                if (local_bit_off)
                    sp.protocol.localBit = false;
                sp.jitterSeed = seed0 + static_cast<std::uint64_t>(s);
                if (faults_on) {
                    sp.faultSeed =
                        fseed0 + static_cast<std::uint64_t>(s);
                }
                sp.id = strfmt("sweep/%s/s%llu", pt.label.c_str(),
                               static_cast<unsigned long long>(
                                   sp.jitterSeed));
                specs.push_back(std::move(sp));
            }
        }

        std::printf("sweep: app=%s nodes=%d victim=%u jitter=%llu "
                    "(%zu points x %d seeds, --jobs %u)\n",
                    spec.app.c_str(), spec.nodes, spec.victimEntries,
                    static_cast<unsigned long long>(spec.jitterMax),
                    specs.size() / static_cast<std::size_t>(sweep_seeds),
                    sweep_seeds, jobs);

        // --replay/--record engage the record-once fast path: each
        // portable trace key records one cell, every other cell
        // replays it; non-portable apps fall back to direct cells.
        Runner runner(/*fail_fast=*/false);
        runner.attachCache(result_cache.get());
        std::vector<RunRecord *> recs =
            want_replay || want_record
                ? runner.runAllReplay(specs, jobs, spec.traceDir)
                : runner.runAll(specs, jobs);

        bool all_ok = true;
        std::size_t i = 0;
        for (const auto &pt : protocolSpectrum()) {
            int ok = 0;
            const RunRecord *first = recs[i];
            const std::size_t base = i;
            for (int s = 0; s < sweep_seeds; ++s, ++i) {
                const RunRecord *r = recs[i];
                if (!r->failed() && r->verified &&
                    r->auditViolations == 0) {
                    ++ok;
                } else {
                    all_ok = false;
                }
            }
            std::printf("  %-10s %3d/%d ok  s0: %llu cycles, image "
                        "%016llx\n",
                        pt.label.c_str(), ok, sweep_seeds,
                        static_cast<unsigned long long>(
                            first->simCycles),
                        static_cast<unsigned long long>(
                            first->imageHash));
            // One replay line per failing cell: every determinism
            // knob spelled out, so the cell reruns exactly, alone,
            // at any --jobs level.
            for (int s = 0; s < sweep_seeds; ++s) {
                const RunRecord *r = recs[base + s];
                if (!r->failed() && r->verified &&
                    r->auditViolations == 0) {
                    continue;
                }
                std::printf("    FAIL %s: status=%s verified=%s "
                            "violations=%llu last_progress=%llu\n",
                            r->id.c_str(), r->status.c_str(),
                            r->verified ? "yes" : "no",
                            static_cast<unsigned long long>(
                                r->auditViolations),
                            static_cast<unsigned long long>(
                                r->lastProgress));
                std::printf("      replay: %s\n",
                            replayLine(specs[base + s],
                                       cliProtoKey(pt.label),
                                       local_bit_off).c_str());
            }
        }

        bool json_ok = true;
        if (!json_path.empty()) {
            json_ok = runner.log().writeFile(json_path);
            if (!json_ok)
                std::fprintf(stderr, "error: could not write %s\n",
                             json_path.c_str());
        }
        bool emit_ok = runner.emitRecords();
        return all_ok && json_ok && emit_ok ? 0 : 1;
    }

    if (snoop) {
        std::printf("app=%s nodes=%d machine=snoop protocol=%s "
                    "bus=%s\n",
                    spec.app.c_str(), spec.nodes,
                    snoopProtocolName(spec.snoopProtocol),
                    busArbitrationName(spec.busArbitration));
    } else {
        std::printf("app=%s nodes=%d protocol=%s profile=%s "
                    "victim=%u\n",
                    spec.app.c_str(), spec.nodes,
                    spec.protocol.name().c_str(),
                    spec.profile == HandlerProfile::TunedAsm ? "asm"
                                                             : "C",
                    spec.victimEntries);
    }

    Runner runner(/*fail_fast=*/false);
    runner.attachCache(result_cache.get());
    RunRecord &r = runner.run(spec);
    if (want_stats)
        std::cout << r.statsText;

    if (want_seq) {
        ExperimentSpec seq_spec = spec;
        seq_spec.id = "cli/seq";
        RunRecord &s = runner.runSequential(seq_spec);
        r.seqCycles = static_cast<double>(s.simCycles);
        r.speedup = static_cast<double>(s.simCycles) /
                    static_cast<double>(r.simCycles);
        std::printf("sequential: %llu cycles; speedup %.2f\n",
                    static_cast<unsigned long long>(s.simCycles),
                    r.speedup);
    }

    std::printf("run time: %llu cycles (%.3f s at 33 MHz)\n",
                static_cast<unsigned long long>(r.simCycles),
                static_cast<double>(r.simCycles) / 33.0e6);
    std::printf("traps: %.0f; handler cycles: %.0f; messages: %.0f\n",
                r.trapsRaised, r.handlerCycles, r.messages);
    if (r.failed()) {
        std::printf("status: %s (last progress at tick %llu)\n",
                    r.status.c_str(),
                    static_cast<unsigned long long>(r.lastProgress));
        if (!r.stallSummary.empty())
            std::printf("%s", r.stallSummary.c_str());
    } else {
        std::printf("verification: %s\n",
                    r.verified ? "PASSED" : "FAILED");
    }
    if (r.audited) {
        std::printf("audit: %llu transitions checked, %llu "
                    "violations\n",
                    static_cast<unsigned long long>(r.auditTransitions),
                    static_cast<unsigned long long>(r.auditViolations));
    }

    bool json_ok = true;
    if (!json_path.empty()) {
        json_ok = runner.log().writeFile(json_path);
        if (!json_ok)
            std::fprintf(stderr, "error: could not write %s\n",
                         json_path.c_str());
    }
    bool emit_ok = runner.emitRecords();
    return !r.failed() && r.verified && json_ok && emit_ok &&
                   r.auditViolations == 0
               ? 0 : 1;
}
