/**
 * @file
 * swex_cli: command-line experiment driver. Runs any of the paper's
 * workloads on any protocol/machine configuration and reports run
 * time, speedup, and memory-system statistics -- the repository's
 * equivalent of driving NWO by hand.
 *
 * Usage examples:
 *   swex_cli --app worker --nodes 16 --protocol h5 --wss 8
 *   swex_cli --app water --nodes 64 --protocol h1lack --victim 6
 *   swex_cli --app tsp --nodes 64 --protocol h0 --stats
 *   swex_cli --list
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "apps/aq.hh"
#include "apps/evolve.hh"
#include "apps/mp3d.hh"
#include "apps/smgrid.hh"
#include "apps/tsp.hh"
#include "apps/water.hh"
#include "apps/worker.hh"
#include "core/spectrum.hh"
#include "machine/mem_api.hh"

using namespace swex;

namespace
{

void
usage()
{
    std::printf(
        "swex_cli -- software-extended shared memory experiment "
        "driver\n\n"
        "  --app <name>       worker|tsp|aq|smgrid|evolve|mp3d|water\n"
        "  --nodes <n>        machine size (default 16, max 256)\n"
        "  --protocol <p>     h0|h1ack|h1lack|h1|h2|h3|h4|h5|dir1sw|"
        "full (default h5)\n"
        "  --profile <p>      c|asm handler cost profile (default c)\n"
        "  --victim <n>       victim cache entries (default 6)\n"
        "  --wss <n>          WORKER worker-set size (default 4)\n"
        "  --iters <n>        WORKER iterations (default 10)\n"
        "  --perfect-ifetch   one-cycle instruction fetch\n"
        "  --no-local-bit     disable the one-bit local pointer\n"
        "  --parallel-inv     Section 7 parallel invalidation\n"
        "  --seq              also run the sequential reference and\n"
        "                     report speedup\n"
        "  --stats            dump the full statistics tree\n"
        "  --list             list protocols and exit\n");
}

ProtocolConfig
parseProtocol(const std::string &s)
{
    if (s == "h0") return ProtocolConfig::h0();
    if (s == "h1ack") return ProtocolConfig::h1Ack();
    if (s == "h1lack") return ProtocolConfig::h1Lack();
    if (s == "h1") return ProtocolConfig::h1();
    if (s == "h2") return ProtocolConfig::hw(2);
    if (s == "h3") return ProtocolConfig::hw(3);
    if (s == "h4") return ProtocolConfig::hw(4);
    if (s == "h5") return ProtocolConfig::hw(5);
    if (s == "dir1sw") return ProtocolConfig::dir1sw();
    if (s == "full") return ProtocolConfig::fullMap();
    fatal("unknown protocol '%s' (try --list)", s.c_str());
}

std::unique_ptr<App>
makeApp(const std::string &name, int nodes)
{
    if (name == "tsp")
        return std::make_unique<TspApp>(TspConfig{});
    if (name == "aq")
        return std::make_unique<AqApp>(AqConfig{});
    if (name == "smgrid") {
        SmgridConfig c;
        c.fineSize = 65;
        return std::make_unique<SmgridApp>(c);
    }
    if (name == "evolve") {
        auto app = std::make_unique<EvolveApp>(EvolveConfig{});
        app->computeGroundTruth(nodes);
        return app;
    }
    if (name == "mp3d")
        return std::make_unique<Mp3dApp>(Mp3dConfig{});
    if (name == "water")
        return std::make_unique<WaterApp>(WaterConfig{});
    fatal("unknown app '%s'", name.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string app_name = "worker";
    std::string proto = "h5";
    MachineConfig mc;
    mc.numNodes = 16;
    mc.cacheCtrl.victimEntries = 6;
    WorkerConfig wc;
    bool want_seq = false;
    bool want_stats = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--app") app_name = next();
        else if (a == "--nodes") mc.numNodes = std::stoi(next());
        else if (a == "--protocol") proto = next();
        else if (a == "--profile")
            mc.profile = next() == "asm" ? HandlerProfile::TunedAsm
                                         : HandlerProfile::FlexibleC;
        else if (a == "--victim")
            mc.cacheCtrl.victimEntries =
                static_cast<unsigned>(std::stoi(next()));
        else if (a == "--wss") wc.workerSetSize = std::stoi(next());
        else if (a == "--iters") wc.iterations = std::stoi(next());
        else if (a == "--perfect-ifetch") mc.perfectIfetch = true;
        else if (a == "--no-local-bit") mc.protocol.localBit = false;
        else if (a == "--parallel-inv") mc.parallelInv = true;
        else if (a == "--seq") want_seq = true;
        else if (a == "--stats") want_stats = true;
        else if (a == "--list") {
            for (const auto &pt : protocolSpectrum())
                std::printf("%-10s %s\n", pt.label.c_str(),
                            pt.protocol.name().c_str());
            return 0;
        } else {
            usage();
            return a == "--help" || a == "-h" ? 0 : 1;
        }
    }

    bool keep_local_bit_off = !mc.protocol.localBit;
    mc.protocol = parseProtocol(proto);
    if (keep_local_bit_off)
        mc.protocol.localBit = false;

    setQuiet(true);
    std::printf("app=%s nodes=%d protocol=%s profile=%s victim=%u\n",
                app_name.c_str(), mc.numNodes,
                mc.protocol.name().c_str(),
                mc.profile == HandlerProfile::TunedAsm ? "asm" : "C",
                mc.cacheCtrl.victimEntries);

    Tick t_par = 0;
    double traps = 0, handler_cycles = 0, msgs = 0;
    bool ok = true;

    if (app_name == "worker") {
        Machine m(mc);
        WorkerApp app(m, wc);
        t_par = app.run(m);
        ok = app.verify(m);
        m.checkInvariants();
        traps = m.sumStat("home.trapsRaised");
        handler_cycles = m.sumStat("home.handlerCycles");
        msgs = m.network.msgCount.value();
        if (want_stats)
            m.dumpStats(std::cout);
    } else {
        auto app = makeApp(app_name, mc.numNodes);
        Machine m(mc);
        t_par = app->runParallel(m);
        ok = app->verify(m);
        m.checkInvariants();
        traps = m.sumStat("home.trapsRaised");
        handler_cycles = m.sumStat("home.handlerCycles");
        msgs = m.network.msgCount.value();
        if (want_stats)
            m.dumpStats(std::cout);

        if (want_seq) {
            auto seq_app = makeApp(app_name, mc.numNodes);
            MachineConfig sc = mc;
            sc.numNodes = 1;
            Machine sm(sc);
            Tick t_seq = seq_app->runSequential(sm);
            std::printf("sequential: %llu cycles; speedup %.2f\n",
                        static_cast<unsigned long long>(t_seq),
                        static_cast<double>(t_seq) /
                            static_cast<double>(t_par));
        }
    }

    std::printf("run time: %llu cycles (%.3f s at 33 MHz)\n",
                static_cast<unsigned long long>(t_par),
                static_cast<double>(t_par) / 33.0e6);
    std::printf("traps: %.0f; handler cycles: %.0f; messages: %.0f\n",
                traps, handler_cycles, msgs);
    std::printf("verification: %s\n", ok ? "PASSED" : "FAILED");
    return ok ? 0 : 1;
}
