#!/usr/bin/env python3
"""Cluster failed sweep cells from swex-run-v1 documents.

A big seeded sweep that fails rarely produces dozens of failure
records whose stall summaries differ only in block addresses and seed
values. This tool parses the `stall` text the runner attaches to
failed records and clusters the failures by *where* coherence got
stuck — directory state @ home node, deferred-queue backlog @ home
node, or bus-queue depth on the snooping machine — so one glance
shows whether 40 failures are one bug or four.

Usage:

  tools/triage_failures.py run1.json [run2.json ...]
  tools/triage_failures.py --self-test

Stall summaries come from the auditor's stallSummary (directory
machines) and SnoopBus::stallSummary (bus machines):

  home 3 block 0x1a40 stuck in PendWrite (pending node 2, 5 acks
  outstanding)
  home 2 holds 17 deferred requests
  bus holds 4 queued transactions
    node 1 BusRdX block 0x80

Records carrying an `error_kind` never reached (or never came back
from) a simulator at all: they are the structured failures swex_cli
--connect writes when the sweep server refused or lost a request
(busy, deadline, parse, transport, ...). They cluster by that kind as
`serve:{kind}` — one glance separates "the server was overloaded"
from "the protocol deadlocked".

Records whose stall text matches none of these patterns cluster by
their status string alone. Exits non-zero if any input is malformed
or (with --self-test) the synthetic fixture misclusters.
"""

import argparse
import json
import re
import sys
from collections import defaultdict

# One regex per known stall line; each match yields one cluster
# signature. Block addresses and counts are deliberately NOT part of
# the signature — they vary per seed while the underlying bug does
# not.
STALL_PATTERNS = [
    # "home 3 block 0x1a40 stuck in PendWrite (pending node 2, ...)"
    (re.compile(r"home (\d+) block \S+ stuck in (\w+)"),
     lambda m: f"{m.group(2)}@home{m.group(1)}"),
    # "home 2 holds 17 deferred requests"
    (re.compile(r"home (\d+) holds \d+ deferred requests"),
     lambda m: f"deferred@home{m.group(1)}"),
    # "bus holds 4 queued transactions"
    (re.compile(r"bus holds \d+ queued transactions"),
     lambda m: "bus-queue"),
]


def signatures(record):
    """Cluster keys for one failed record (deduplicated, in stall
    order). Serve-side structured errors cluster by their kind;
    otherwise falls back to the status string when nothing matches."""
    kind = record.get("error_kind")
    if kind:
        return [f"serve:{kind}"]
    seen = []
    for line in record.get("stall", "").splitlines():
        for pattern, key in STALL_PATTERNS:
            m = pattern.search(line)
            if m:
                sig = key(m)
                if sig not in seen:
                    seen.append(sig)
                break
    if not seen:
        seen.append(f"status:{record.get('status', 'unknown')}")
    return seen


def load_records(paths):
    records = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            sys.exit(f"error: {path}: {e}")
        if doc.get("schema") != "swex-run-v1":
            sys.exit(f"error: {path}: unknown schema "
                     f"{doc.get('schema')!r}")
        recs = doc.get("records")
        if not isinstance(recs, list):
            sys.exit(f"error: {path}: no records array")
        records.extend(recs)
    return records


def cluster(records):
    """Map signature -> list of failed records carrying it."""
    clusters = defaultdict(list)
    for r in records:
        if r.get("status", "ok") == "ok":
            continue
        for sig in signatures(r):
            clusters[sig].append(r)
    return clusters


def describe(record):
    parts = [record.get("id", "?"),
             f"app={record.get('app', '?')}",
             f"protocol={record.get('protocol', '?')}",
             f"nodes={record.get('nodes', '?')}",
             f"status={record.get('status', '?')}"]
    if "machine_model" in record:
        parts.insert(3, f"machine={record['machine_model']}")
    return " ".join(parts)


def report(records, max_examples=5, out=sys.stdout):
    failed = [r for r in records if r.get("status", "ok") != "ok"]
    clusters = cluster(records)
    print(f"{len(records)} records, {len(failed)} failed, "
          f"{len(clusters)} failure clusters", file=out)
    order = sorted(clusters.items(),
                   key=lambda kv: (-len(kv[1]), kv[0]))
    for sig, members in order:
        print(f"\n[{len(members)}x] {sig}", file=out)
        for r in members[:max_examples]:
            print(f"    {describe(r)}", file=out)
        if len(members) > max_examples:
            print(f"    ... and {len(members) - max_examples} more",
                  file=out)
    return clusters


def synthetic_fixture():
    """A hand-built swex-run-v1 document exercising every pattern:
    two PendWrite@home3 cells (different blocks/seeds — must merge),
    one deferred backlog, one bus-machine stall, one failure with an
    empty stall text, two serve-side structured errors (a shed
    request and a dead peer — must cluster by error_kind, not
    status), and one passing record (must be ignored)."""
    def rec(rid, status, stall, **extra):
        r = {"id": rid, "app": "worker", "protocol": "h5",
             "nodes": 16, "status": status}
        if status != "ok":
            r["stall"] = stall
        r.update(extra)
        return r

    return {"schema": "swex-run-v1", "records": [
        rec("worker/h5/seed4", "deadlock",
            "home 3 block 0x1a40 stuck in PendWrite "
            "(pending node 2, 5 acks outstanding)\n"),
        rec("worker/h5/seed9", "deadlock",
            "home 3 block 0x2b80 stuck in PendWrite "
            "(pending node 7, 1 acks outstanding)\n"
            "home 2 holds 17 deferred requests\n"),
        rec("tsp/h1ack/seed2", "deadline",
            "home 2 holds 4 deferred requests\n"),
        rec("falseshare/mesi/seed5", "deadline",
            "bus holds 4 queued transactions\n"
            "  node 1 BusRdX block 0x80\n",
            machine_model="snoop", app="falseshare",
            protocol="MESI", nodes=4),
        rec("worker/h5/seed0", "deadline", ""),
        rec("worker/h5/remote1", "error", "",
            error="server busy (admission queue full)",
            error_kind="busy"),
        rec("worker/h5/remote2", "error", "",
            error="request deadline expired",
            error_kind="deadline"),
        rec("worker/h5/seed1", "ok", ""),
    ]}


def self_test():
    doc = synthetic_fixture()
    clusters = report(doc["records"])
    expect = {
        "PendWrite@home3": 2,
        "deferred@home2": 2,
        "bus-queue": 1,
        "status:deadline": 1,
        "serve:busy": 1,
        "serve:deadline": 1,
    }
    got = {sig: len(members) for sig, members in clusters.items()}
    if got != expect:
        sys.exit(f"FAIL: self-test clusters {got} != {expect}")
    if any(r.get("status") == "ok"
           for members in clusters.values() for r in members):
        sys.exit("FAIL: self-test clustered a passing record")
    print("\nOK: self-test clusters match")


def main():
    ap = argparse.ArgumentParser(
        description="cluster failed swex-run-v1 cells by stall "
                    "signature")
    ap.add_argument("runs", nargs="*",
                    help="swex-run-v1 JSON documents")
    ap.add_argument("--examples", type=int, default=5,
                    help="example records shown per cluster")
    ap.add_argument("--self-test", action="store_true",
                    help="run the synthetic-fixture self test")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return
    if not args.runs:
        ap.error("no input documents (or --self-test)")
    report(load_records(args.runs), max_examples=args.examples)


if __name__ == "__main__":
    main()
